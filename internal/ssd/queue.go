package ssd

import "sort"

// Completion records the outcome of one asynchronous page read.
type Completion struct {
	// Page is the page that was read.
	Page PageID
	// SubmitNS is the virtual time the command was issued to the device.
	SubmitNS int64
	// CompleteNS is the virtual time the read finished.
	CompleteNS int64
	// Err is non-nil if the read failed (fault injection): ErrReadFailed
	// or ErrTimeout, wrapped with the page and read sequence number.
	Err error
	// Corrupt marks a read that completed successfully but delivered a
	// corrupted payload (fault injection). Detection is the reader's job.
	Corrupt bool
	// Buf holds the page image a real-I/O backend read, nil on simulated
	// backends (whose payload path is the engine's PageSource). The
	// consumer owns the single reference the backend hands over and must
	// Release it (or Retain for longer-lived views) — see PageBuf.
	Buf *PageBuf
}

// Queue is an asynchronous submission/completion queue pair bound to a
// device, mirroring SPDK's qpair model: commands are submitted without
// blocking and completions are reaped later, which is what enables the
// online phase to pipeline page selection with SSD access (§6.2).
//
// A Queue is not safe for concurrent use; each worker owns one, as SPDK
// prescribes. The underlying Device is shared and thread-safe.
//
// The queue tracks in-flight commands in a min-heap on completion time, so
// Outstanding and Submit cost O(log depth) instead of scanning every
// completion since the last Drain — long-running workers that drain rarely
// would otherwise degrade quadratically. Both assume the virtual clock
// passed in never moves backwards (as worker clocks are monotone).
type Queue struct {
	dev     *Device
	depth   int
	pending []Completion // all completions since the last Drain
	// inflight holds the completion times of commands not yet observed
	// complete, as a binary min-heap.
	inflight []int64
}

// NewQueue returns a queue bound to dev with the profile's queue depth.
func NewQueue(dev *Device) *Queue {
	return &Queue{dev: dev, depth: dev.Profile().QueueDepth}
}

// heapPush adds a completion time to the in-flight heap.
func (q *Queue) heapPush(t int64) {
	q.inflight = append(q.inflight, t)
	i := len(q.inflight) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q.inflight[parent] <= q.inflight[i] {
			break
		}
		q.inflight[parent], q.inflight[i] = q.inflight[i], q.inflight[parent]
		i = parent
	}
}

// heapPop removes and returns the earliest in-flight completion time.
func (q *Queue) heapPop() int64 {
	top := q.inflight[0]
	last := len(q.inflight) - 1
	q.inflight[0] = q.inflight[last]
	q.inflight = q.inflight[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(q.inflight) && q.inflight[l] < q.inflight[smallest] {
			smallest = l
		}
		if r < len(q.inflight) && q.inflight[r] < q.inflight[smallest] {
			smallest = r
		}
		if smallest == i {
			return top
		}
		q.inflight[i], q.inflight[smallest] = q.inflight[smallest], q.inflight[i]
		i = smallest
	}
}

// reap pops every in-flight entry that has completed by nowNS.
func (q *Queue) reap(nowNS int64) {
	for len(q.inflight) > 0 && q.inflight[0] <= nowNS {
		q.heapPop()
	}
}

// Outstanding returns the number of commands still in flight at nowNS.
func (q *Queue) Outstanding(nowNS int64) int {
	q.reap(nowNS)
	return len(q.inflight)
}

// InFlight returns the number of commands not yet observed complete as of
// the last Submit/Outstanding/reap — without advancing the reap point.
func (q *Queue) InFlight() int { return len(q.inflight) }

// Submit issues an asynchronous read of page at virtual time nowNS and
// returns the issue time, which exceeds nowNS only when the queue was full
// and the caller had to (virtually) wait for the earliest outstanding
// completion to free a slot.
func (q *Queue) Submit(page PageID, nowNS int64) int64 {
	issue := nowNS
	q.reap(issue)
	for len(q.inflight) >= q.depth {
		issue = q.heapPop()
		q.reap(issue)
	}
	done, fault := q.dev.ReadDetailed(page, issue)
	q.heapPush(done)
	q.pending = append(q.pending, Completion{
		Page:       page,
		SubmitNS:   issue,
		CompleteNS: done,
		Err:        fault.Err,
		Corrupt:    fault.Corrupt,
	})
	return issue
}

// Drain waits (virtually) for every command submitted since the last Drain
// to complete and returns the resulting virtual time — at least nowNS —
// along with all completions ordered by completion time. The queue is empty
// afterwards.
func (q *Queue) Drain(nowNS int64) (doneNS int64, comps []Completion) {
	doneNS = nowNS
	for _, c := range q.pending {
		if c.CompleteNS > doneNS {
			doneNS = c.CompleteNS
		}
	}
	comps = q.pending
	q.pending = nil
	q.inflight = q.inflight[:0]
	sort.Slice(comps, func(i, j int) bool { return comps[i].CompleteNS < comps[j].CompleteNS })
	return doneNS, comps
}
