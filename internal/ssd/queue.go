package ssd

import "sort"

// Completion records the outcome of one asynchronous page read.
type Completion struct {
	// Page is the page that was read.
	Page PageID
	// SubmitNS is the virtual time the command was issued to the device.
	SubmitNS int64
	// CompleteNS is the virtual time the read finished.
	CompleteNS int64
	// Err is non-nil if the read failed (fault injection).
	Err error
}

// Queue is an asynchronous submission/completion queue pair bound to a
// device, mirroring SPDK's qpair model: commands are submitted without
// blocking and completions are reaped later, which is what enables the
// online phase to pipeline page selection with SSD access (§6.2).
//
// A Queue is not safe for concurrent use; each worker owns one, as SPDK
// prescribes. The underlying Device is shared and thread-safe.
type Queue struct {
	dev     *Device
	depth   int
	pending []Completion // all completions since the last Drain
}

// NewQueue returns a queue bound to dev with the profile's queue depth.
func NewQueue(dev *Device) *Queue {
	return &Queue{dev: dev, depth: dev.Profile().QueueDepth}
}

// Outstanding returns the number of commands still in flight at nowNS.
func (q *Queue) Outstanding(nowNS int64) int {
	n := 0
	for _, c := range q.pending {
		if c.CompleteNS > nowNS {
			n++
		}
	}
	return n
}

// Submit issues an asynchronous read of page at virtual time nowNS and
// returns the issue time, which exceeds nowNS only when the queue was full
// and the caller had to (virtually) wait for the earliest outstanding
// completion to free a slot.
func (q *Queue) Submit(page PageID, nowNS int64) int64 {
	issue := nowNS
	for q.Outstanding(issue) >= q.depth {
		earliest := int64(-1)
		for _, c := range q.pending {
			if c.CompleteNS > issue && (earliest < 0 || c.CompleteNS < earliest) {
				earliest = c.CompleteNS
			}
		}
		if earliest < 0 {
			break
		}
		issue = earliest
	}
	done, err := q.dev.Read(page, issue)
	q.pending = append(q.pending, Completion{
		Page:       page,
		SubmitNS:   issue,
		CompleteNS: done,
		Err:        err,
	})
	return issue
}

// Drain waits (virtually) for every command submitted since the last Drain
// to complete and returns the resulting virtual time — at least nowNS —
// along with all completions ordered by completion time. The queue is empty
// afterwards.
func (q *Queue) Drain(nowNS int64) (doneNS int64, comps []Completion) {
	doneNS = nowNS
	for _, c := range q.pending {
		if c.CompleteNS > doneNS {
			doneNS = c.CompleteNS
		}
	}
	comps = q.pending
	q.pending = nil
	sort.Slice(comps, func(i, j int) bool { return comps[i].CompleteNS < comps[j].CompleteNS })
	return doneNS, comps
}
