package ssd

import (
	"testing"
	"time"
)

func TestQueueSubmitDrain(t *testing.T) {
	d := mustDevice(t, testProfile())
	q := NewQueue(d)
	for i := 0; i < 4; i++ {
		if issue := q.Submit(PageID(i), 100); issue != 100 {
			t.Errorf("Submit %d: issue = %d, want 100 (queue not full)", i, issue)
		}
	}
	if got := q.Outstanding(100); got != 4 {
		t.Errorf("Outstanding = %d, want 4", got)
	}
	done, comps := q.Drain(100)
	if len(comps) != 4 {
		t.Fatalf("Drain returned %d completions, want 4", len(comps))
	}
	for i := 1; i < len(comps); i++ {
		if comps[i].CompleteNS < comps[i-1].CompleteNS {
			t.Error("completions not ordered by completion time")
		}
	}
	if done != comps[len(comps)-1].CompleteNS {
		t.Errorf("Drain time %d != last completion %d", done, comps[len(comps)-1].CompleteNS)
	}
	if q.Outstanding(done) != 0 {
		t.Error("queue not empty after Drain")
	}
	// Drain of an empty queue returns now.
	if dn, cs := q.Drain(done + 5); dn != done+5 || len(cs) != 0 {
		t.Errorf("empty Drain = (%d, %d comps)", dn, len(cs))
	}
}

func TestQueueDepthBackpressure(t *testing.T) {
	p := testProfile()
	p.QueueDepth = 2
	d := mustDevice(t, p)
	q := NewQueue(d)
	i1 := q.Submit(0, 0)
	i2 := q.Submit(1, 0)
	if i1 != 0 || i2 != 0 {
		t.Fatalf("first two submits delayed: %d, %d", i1, i2)
	}
	// Third submit must wait for a slot.
	i3 := q.Submit(2, 0)
	if i3 <= 0 {
		t.Errorf("third submit not delayed by full queue: issue = %d", i3)
	}
	_, comps := q.Drain(0)
	if len(comps) != 3 {
		t.Errorf("Drain returned %d completions, want 3", len(comps))
	}
}

func TestQueueCollectsErrors(t *testing.T) {
	d := mustDevice(t, testProfile())
	d.SetFaultInjector(FailEveryN(2))
	q := NewQueue(d)
	for i := 0; i < 4; i++ {
		q.Submit(PageID(i), 0)
	}
	_, comps := q.Drain(0)
	var fails int
	for _, c := range comps {
		if c.Err != nil {
			fails++
		}
	}
	if fails != 2 {
		t.Errorf("failed completions = %d, want 2", fails)
	}
}

func TestQueuePipelineOverlap(t *testing.T) {
	// Submitting k reads spread over time and draining must finish sooner
	// than issuing them strictly one-after-another (the §6.2 rationale).
	p := testProfile()
	d1 := mustDevice(t, p)
	q := NewQueue(d1)
	now := int64(0)
	const selectionCost = int64(2 * time.Microsecond)
	for i := 0; i < 8; i++ {
		now += selectionCost // software selection between submissions
		q.Submit(PageID(i), now)
	}
	pipelined, _ := q.Drain(now)

	d2 := mustDevice(t, p)
	serial := int64(0)
	for i := 0; i < 8; i++ {
		serial += selectionCost
		done, _ := d2.Read(PageID(i), serial)
		serial = done // wait for each read before selecting the next
	}
	if pipelined >= serial {
		t.Errorf("pipelined %d ns not faster than serial %d ns", pipelined, serial)
	}
}
