// Package ssd provides a discrete-event simulated NVMe solid-state drive.
//
// The paper evaluates on real Intel Optane P5800X / P4510 drives accessed
// through the SPDK user-space driver. Neither the hardware nor SPDK is
// available to this reproduction, so the device is modelled instead: every
// page read is charged a device-internal access latency on one of several
// parallel channels plus a serialized transfer slot bounded by the drive's
// read bandwidth. All of the paper's results are functions of page-read
// counts, device latency/bandwidth, and software overhead, which this model
// reproduces; see DESIGN.md §2.
//
// Time is virtual: callers carry their own clocks in nanoseconds and the
// device answers "when would this read complete?". The asynchronous Queue
// type mirrors SPDK's queue-pair submit/poll interface so the online
// phase's pipelining (§6.2) exercises the same code structure it would
// against real hardware.
package ssd

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// PageID identifies a 4 KiB page on the device.
type PageID = uint32

// Profile describes a device's performance characteristics.
type Profile struct {
	// Name labels the device in reports.
	Name string
	// PageSize is the read granularity in bytes (typically 4096).
	PageSize int
	// ReadLatency is the device-internal access latency per page read.
	ReadLatency time.Duration
	// Bandwidth is the maximum sustained read bandwidth in bytes/second.
	Bandwidth float64
	// Channels is the device's internal parallelism: reads on different
	// channels overlap, reads on the same channel serialize.
	Channels int
	// QueueDepth is the maximum outstanding commands per Queue.
	QueueDepth int
	// WriteLatency is the device-internal program latency per page write;
	// zero derives 2× ReadLatency (program is slower than read on every
	// flash/PMem generation).
	WriteLatency time.Duration
	// WriteBandwidth is the maximum sustained write bandwidth in
	// bytes/second; zero derives half of the read Bandwidth.
	WriteBandwidth float64
}

// writeLatency returns the effective write latency.
func (p Profile) writeLatency() time.Duration {
	if p.WriteLatency > 0 {
		return p.WriteLatency
	}
	return 2 * p.ReadLatency
}

// writeBandwidth returns the effective write bandwidth.
func (p Profile) writeBandwidth() float64 {
	if p.WriteBandwidth > 0 {
		return p.WriteBandwidth
	}
	return p.Bandwidth / 2
}

// WriteTransferTime returns the bus-serialization time of one page write.
func (p Profile) WriteTransferTime() time.Duration {
	return time.Duration(float64(p.PageSize) / p.writeBandwidth() * float64(time.Second))
}

// Validate reports an error for out-of-range profile parameters.
func (p Profile) Validate() error {
	switch {
	case p.PageSize <= 0:
		return fmt.Errorf("ssd: profile %q: PageSize must be positive", p.Name)
	case p.ReadLatency <= 0:
		return fmt.Errorf("ssd: profile %q: ReadLatency must be positive", p.Name)
	case p.Bandwidth <= 0:
		return fmt.Errorf("ssd: profile %q: Bandwidth must be positive", p.Name)
	case p.Channels <= 0:
		return fmt.Errorf("ssd: profile %q: Channels must be positive", p.Name)
	case p.QueueDepth <= 0:
		return fmt.Errorf("ssd: profile %q: QueueDepth must be positive", p.Name)
	}
	return nil
}

// TransferTime returns the bus-serialization time of one page.
func (p Profile) TransferTime() time.Duration {
	return time.Duration(float64(p.PageSize) / p.Bandwidth * float64(time.Second))
}

// Built-in device profiles. Latency and bandwidth follow the public
// specifications of the drives the paper uses; channel counts are chosen so
// that latency × achievable IOPS matches the drives' rated concurrency.
var (
	// P5800X models the Intel Optane SSD P5800X (§8.1 default device):
	// ~5 µs read latency, ~6.5 GB/s sustained random read.
	P5800X = Profile{
		Name:        "P5800X",
		PageSize:    4096,
		ReadLatency: 5 * time.Microsecond,
		Bandwidth:   6.5e9,
		Channels:    16,
		QueueDepth:  128,
	}

	// P4510 models the Intel SSD P4510 (NAND TLC, Fig 17b): ~80 µs read
	// latency, ~2.6 GB/s 4K random read, deep internal parallelism.
	P4510 = Profile{
		Name:        "P4510",
		PageSize:    4096,
		ReadLatency: 80 * time.Microsecond,
		Bandwidth:   2.6e9,
		Channels:    64,
		QueueDepth:  256,
	}
)

// RAID0 returns a profile modelling n drives striped at page granularity:
// aggregate bandwidth and channel count scale with n while per-read latency
// is unchanged.
//
// This is a COARSE approximation: it folds the n drives into one virtual
// device with a single transfer bus, a single merged command queue of
// depth n×QueueDepth, and one shared channel pool. Cross-device queue
// contention, skewed per-drive load (reads concentrated on one stripe
// residue still enjoy the full aggregate bandwidth here, which no real
// array delivers), and single-drive faults are therefore mismodelled —
// see TestRAID0DivergesFromArrayOnSkew. Use Array for a faithful
// multi-device model with independent per-shard queues; the experiments
// that reproduce the paper's RAID-0 results run on Array.
func RAID0(base Profile, n int) Profile {
	if n < 1 {
		n = 1
	}
	base.Name = fmt.Sprintf("RAID0-%dx%s", n, base.Name)
	base.Bandwidth *= float64(n)
	base.Channels *= n
	base.QueueDepth *= n
	return base
}

// Stats aggregates device activity since construction or the last Reset.
type Stats struct {
	// Reads is the number of page reads completed.
	Reads int64
	// BytesRead is Reads × PageSize.
	BytesRead int64
	// BusyNS is the total channel-occupancy in virtual nanoseconds,
	// summed over channels.
	BusyNS int64
	// Errors is the number of reads that failed via fault injection
	// (ErrReadFailed and ErrTimeout alike).
	Errors int64
	// Timeouts is the subset of Errors that were stuck commands.
	Timeouts int64
	// Corruptions is the number of reads that completed successfully but
	// delivered a corrupted payload.
	Corruptions int64
	// InjectedLatencyNS is the total extra device occupancy charged by
	// injected latency spikes, slow channels, and stuck commands.
	InjectedLatencyNS int64
	// Writes is the number of page writes completed; BytesWritten is
	// Writes × PageSize.
	Writes       int64
	BytesWritten int64
}

// Faults returns the total number of injected faults the reader must
// account for: failed commands plus silently corrupted payloads.
func (s Stats) Faults() int64 { return s.Errors + s.Corruptions }

// Device is a simulated SSD. It is safe for concurrent use by multiple
// queues; state is protected by a mutex, mirroring the hardware arbitration
// point real queues contend on.
type Device struct {
	prof Profile

	mu          sync.Mutex
	channelFree []int64 // virtual ns at which each channel is next idle
	busFree     int64   // virtual ns at which the transfer bus is next idle
	stats       Stats
	readSeq     int64
	faults      FaultModel
	observer    func(faulted bool) // read-outcome tap feeding shard health
}

// setReadObserver installs (or clears, with nil) a per-read outcome tap.
// An Array wires each member here so every read feeds that shard's health
// window; re-wiring is how a rebuilt array adopts surviving devices.
func (d *Device) setReadObserver(fn func(faulted bool)) {
	d.mu.Lock()
	d.observer = fn
	d.mu.Unlock()
}

// NewDevice returns a device with the given profile.
func NewDevice(prof Profile) (*Device, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	return &Device{
		prof:        prof,
		channelFree: make([]int64, prof.Channels),
	}, nil
}

// Profile returns the device's profile.
func (d *Device) Profile() Profile { return d.prof }

// SetFaultInjector installs (or clears, with nil) a legacy pass/fail fault
// injector. Prefer SetFaultModel for the full fault taxonomy.
func (d *Device) SetFaultInjector(f FaultInjector) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if f == nil {
		d.faults = nil
		return
	}
	d.faults = legacyModel{inj: f}
}

// SetFaultModel installs (or clears, with nil) a fault model consulted on
// every read.
func (d *Device) SetFaultModel(m FaultModel) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.faults = m
}

// Read simulates a page read submitted at virtual time submitNS and returns
// the virtual completion time. err is non-nil only under fault injection.
// See ReadDetailed for the full fault outcome (corruption, spikes).
func (d *Device) Read(page PageID, submitNS int64) (completeNS int64, err error) {
	completeNS, f := d.ReadDetailed(page, submitNS)
	return completeNS, f.Err
}

// ReadDetailed simulates a page read submitted at virtual time submitNS and
// returns the virtual completion time plus the injected fault outcome. The
// page's channel is page mod Channels; the read occupies the channel for
// ReadLatency (plus any injected spike/timeout occupancy) and then a
// serialized bus slot of TransferTime, which is what bounds aggregate
// bandwidth. The timing cost is charged even for failed commands, as a
// failed NVMe command still occupies the device.
func (d *Device) ReadDetailed(page PageID, submitNS int64) (completeNS int64, fault Fault) {
	lat := int64(d.prof.ReadLatency)
	xfer := int64(d.prof.TransferTime())

	d.mu.Lock()
	d.readSeq++
	n := d.readSeq
	if d.faults != nil {
		fault = d.faults.Judge(n, page)
	}
	ch := int(page) % len(d.channelFree)
	start := submitNS
	if d.channelFree[ch] > start {
		start = d.channelFree[ch]
	}
	readEnd := start + lat + fault.ExtraLatencyNS
	d.channelFree[ch] = readEnd
	xferStart := readEnd
	if d.busFree > xferStart {
		xferStart = d.busFree
	}
	completeNS = xferStart + xfer
	d.busFree = completeNS
	d.stats.Reads++
	d.stats.BytesRead += int64(d.prof.PageSize)
	d.stats.BusyNS += readEnd - start
	d.stats.InjectedLatencyNS += fault.ExtraLatencyNS
	if fault.Err != nil {
		d.stats.Errors++
		if errors.Is(fault.Err, ErrTimeout) {
			d.stats.Timeouts++
		}
	} else if fault.Corrupt {
		d.stats.Corruptions++
	}
	obs := d.observer
	d.mu.Unlock()

	if obs != nil {
		obs(fault.Err != nil || fault.Corrupt)
	}
	if fault.Err != nil {
		fault.Err = fmt.Errorf("%w: page %d (read #%d)", fault.Err, page, n)
	}
	return completeNS, fault
}

// recordExternalRead folds one measured real-I/O read into the device's
// statistics and health window. The file backend's shard shells route
// their pread/io_uring outcomes here so /v1/stats, shard stats, and the
// health machinery observe real hardware exactly as they observe the
// simulation: busyNS is the measured service time of the read, err/corrupt
// the outcome the health window scores.
func (d *Device) recordExternalRead(busyNS int64, err error, corrupt bool) {
	d.mu.Lock()
	d.readSeq++
	d.stats.Reads++
	d.stats.BytesRead += int64(d.prof.PageSize)
	d.stats.BusyNS += busyNS
	if err != nil {
		d.stats.Errors++
		if errors.Is(err, ErrTimeout) {
			d.stats.Timeouts++
		}
	} else if corrupt {
		d.stats.Corruptions++
	}
	obs := d.observer
	d.mu.Unlock()
	if obs != nil {
		obs(err != nil || corrupt)
	}
}

// Frontier returns the latest virtual time at which any device resource
// becomes idle. A virtual clock that starts at the frontier observes an
// idle device; one that starts earlier would be (correctly) queued behind
// in-flight work from other clocks.
func (d *Device) Frontier() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	f := d.busFree
	for _, t := range d.channelFree {
		if t > f {
			f = t
		}
	}
	return f
}

// Write simulates a page write (program) submitted at virtual time
// submitNS and returns the virtual completion time. Writes share the
// channel and bus resources with reads, at the profile's (slower) write
// latency and bandwidth. The serving path never writes; the offline
// deployment of a layout does, which is how replication's extra space
// also costs write time.
func (d *Device) Write(page PageID, submitNS int64) int64 {
	lat := int64(d.prof.writeLatency())
	xfer := int64(d.prof.WriteTransferTime())

	d.mu.Lock()
	defer d.mu.Unlock()
	ch := int(page) % len(d.channelFree)
	start := submitNS
	if d.channelFree[ch] > start {
		start = d.channelFree[ch]
	}
	// Transfer precedes the program on writes (host pushes data first).
	xferStart := start
	if d.busFree > xferStart {
		xferStart = d.busFree
	}
	xferEnd := xferStart + xfer
	d.busFree = xferEnd
	complete := xferEnd + lat
	d.channelFree[ch] = complete
	d.stats.Writes++
	d.stats.BytesWritten += int64(d.prof.PageSize)
	d.stats.BusyNS += complete - start
	return complete
}

// Stats returns a snapshot of accumulated statistics.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Reset clears statistics and returns the device to an idle state at
// virtual time zero.
func (d *Device) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := range d.channelFree {
		d.channelFree[i] = 0
	}
	d.busFree = 0
	d.stats = Stats{}
	d.readSeq = 0
}
