package ssd

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func testProfile() Profile {
	return Profile{
		Name:        "test",
		PageSize:    4096,
		ReadLatency: 5 * time.Microsecond,
		Bandwidth:   4.096e9, // transfer time exactly 1 µs per page
		Channels:    8,       // 8/5µs = 1.6M IOPS ≥ bus rate: device is bus-bound
		QueueDepth:  8,
	}
}

func mustDevice(t *testing.T, p Profile) *Device {
	t.Helper()
	d, err := NewDevice(p)
	if err != nil {
		t.Fatalf("NewDevice: %v", err)
	}
	return d
}

func TestProfileValidate(t *testing.T) {
	good := testProfile()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	mutations := []func(*Profile){
		func(p *Profile) { p.PageSize = 0 },
		func(p *Profile) { p.ReadLatency = 0 },
		func(p *Profile) { p.Bandwidth = 0 },
		func(p *Profile) { p.Channels = 0 },
		func(p *Profile) { p.QueueDepth = 0 },
	}
	for i, m := range mutations {
		p := testProfile()
		m(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid profile accepted", i)
		}
		if _, err := NewDevice(p); err == nil {
			t.Errorf("case %d: NewDevice accepted invalid profile", i)
		}
	}
}

func TestTransferTime(t *testing.T) {
	p := testProfile()
	if got := p.TransferTime(); got != time.Microsecond {
		t.Errorf("TransferTime = %v, want 1µs", got)
	}
}

func TestSingleReadLatency(t *testing.T) {
	d := mustDevice(t, testProfile())
	done, err := d.Read(0, 0)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	want := int64(5*time.Microsecond + time.Microsecond)
	if done != want {
		t.Errorf("completion = %d ns, want %d ns (latency+transfer)", done, want)
	}
}

func TestSameChannelSerializes(t *testing.T) {
	d := mustDevice(t, testProfile())
	// Pages 0 and 8 map to channel 0 with 8 channels.
	first, _ := d.Read(0, 0)
	second, _ := d.Read(8, 0)
	if second <= first {
		t.Errorf("same-channel reads did not serialize: %d then %d", first, second)
	}
	// The second read starts only after the first vacates the channel
	// (latency); its transfer then follows immediately since the bus is
	// already free by then.
	lat := int64(5 * time.Microsecond)
	xfer := int64(time.Microsecond)
	if want := 2*lat + xfer; second != want {
		t.Errorf("second completion = %d, want %d", second, want)
	}
}

func TestDifferentChannelsOverlap(t *testing.T) {
	d := mustDevice(t, testProfile())
	a, _ := d.Read(0, 0) // channel 0
	b, _ := d.Read(1, 0) // channel 1
	lat := int64(5 * time.Microsecond)
	xfer := int64(time.Microsecond)
	if a != lat+xfer {
		t.Errorf("first completion = %d, want %d", a, lat+xfer)
	}
	// Latencies overlap; only the bus serializes.
	if want := lat + 2*xfer; b != want {
		t.Errorf("second completion = %d, want %d", b, want)
	}
}

func TestBandwidthBound(t *testing.T) {
	// Submit many reads across all channels at time zero; aggregate
	// throughput must approach but never exceed the profile bandwidth.
	p := testProfile()
	d := mustDevice(t, p)
	const n = 1000
	var last int64
	for i := 0; i < n; i++ {
		done, _ := d.Read(PageID(i), 0)
		if done > last {
			last = done
		}
	}
	bytes := float64(n * p.PageSize)
	seconds := float64(last) / float64(time.Second)
	bw := bytes / seconds
	if bw > p.Bandwidth*1.001 {
		t.Errorf("achieved bandwidth %.3e exceeds cap %.3e", bw, p.Bandwidth)
	}
	if bw < p.Bandwidth*0.9 {
		t.Errorf("achieved bandwidth %.3e well below cap %.3e under full load", bw, p.Bandwidth)
	}
}

func TestCompletionMonotonicWithSubmitTime(t *testing.T) {
	// Property: for a single page stream, completion never precedes
	// submission + latency + transfer.
	d := mustDevice(t, testProfile())
	rng := rand.New(rand.NewSource(3))
	minCost := int64(5*time.Microsecond + time.Microsecond)
	now := int64(0)
	for i := 0; i < 500; i++ {
		now += int64(rng.Intn(3000))
		done, _ := d.Read(PageID(rng.Intn(64)), now)
		if done < now+minCost {
			t.Fatalf("read %d: completion %d < submit %d + min cost %d", i, done, now, minCost)
		}
	}
}

func TestStatsAndReset(t *testing.T) {
	d := mustDevice(t, testProfile())
	for i := 0; i < 10; i++ {
		if _, err := d.Read(PageID(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	s := d.Stats()
	if s.Reads != 10 {
		t.Errorf("Reads = %d, want 10", s.Reads)
	}
	if s.BytesRead != 10*4096 {
		t.Errorf("BytesRead = %d, want %d", s.BytesRead, 10*4096)
	}
	if s.BusyNS <= 0 {
		t.Error("BusyNS not accumulated")
	}
	d.Reset()
	if s := d.Stats(); s.Reads != 0 || s.BytesRead != 0 || s.BusyNS != 0 {
		t.Errorf("stats after Reset = %+v", s)
	}
	// After reset, timing restarts from idle.
	done, _ := d.Read(0, 0)
	if want := int64(6 * time.Microsecond); done != want {
		t.Errorf("post-reset completion = %d, want %d", done, want)
	}
}

func TestFaultInjection(t *testing.T) {
	d := mustDevice(t, testProfile())
	d.SetFaultInjector(FailEveryN(3))
	var fails int
	for i := 0; i < 9; i++ {
		_, err := d.Read(PageID(i), 0)
		if err != nil {
			if !errors.Is(err, ErrReadFailed) {
				t.Errorf("error not ErrReadFailed: %v", err)
			}
			fails++
		}
	}
	if fails != 3 {
		t.Errorf("fails = %d, want 3", fails)
	}
	if s := d.Stats(); s.Errors != 3 {
		t.Errorf("Stats.Errors = %d, want 3", s.Errors)
	}
	d.SetFaultInjector(nil)
	if _, err := d.Read(0, 0); err != nil {
		t.Errorf("read failed after clearing injector: %v", err)
	}
}

func TestConcurrentReads(t *testing.T) {
	d := mustDevice(t, testProfile())
	var wg sync.WaitGroup
	const workers, per = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			now := int64(0)
			for i := 0; i < per; i++ {
				done, _ := d.Read(PageID(w*per+i), now)
				now = done
			}
		}(w)
	}
	wg.Wait()
	if s := d.Stats(); s.Reads != workers*per {
		t.Errorf("Reads = %d, want %d", s.Reads, workers*per)
	}
}

func TestRAID0(t *testing.T) {
	r := RAID0(P5800X, 2)
	if r.Bandwidth != 2*P5800X.Bandwidth {
		t.Errorf("RAID0 bandwidth = %v, want doubled", r.Bandwidth)
	}
	if r.Channels != 2*P5800X.Channels {
		t.Errorf("RAID0 channels = %v, want doubled", r.Channels)
	}
	if r.ReadLatency != P5800X.ReadLatency {
		t.Errorf("RAID0 latency changed: %v", r.ReadLatency)
	}
	if RAID0(P5800X, 0).Bandwidth != P5800X.Bandwidth {
		t.Error("RAID0 with n<1 should clamp to 1")
	}
}

func TestBuiltinProfiles(t *testing.T) {
	for _, p := range []Profile{P5800X, P4510, RAID0(P5800X, 2)} {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", p.Name, err)
		}
	}
	if P4510.ReadLatency <= P5800X.ReadLatency {
		t.Error("NAND P4510 should have higher latency than Optane P5800X")
	}
}

func TestWritePath(t *testing.T) {
	d := mustDevice(t, testProfile())
	done := d.Write(0, 0)
	// Default write latency = 2× read latency; write bandwidth = half read
	// bandwidth, so transfer = 2 µs; transfer precedes program.
	want := int64(2*time.Microsecond + 10*time.Microsecond)
	if done != want {
		t.Errorf("write completion = %d, want %d", done, want)
	}
	s := d.Stats()
	if s.Writes != 1 || s.BytesWritten != 4096 {
		t.Errorf("write stats = %+v", s)
	}
	// Writes and reads share channel state: a read on the written page's
	// channel must queue behind the program.
	readDone, _ := d.Read(0, 0)
	if readDone <= done {
		t.Errorf("read at %d did not queue behind write finishing at %d", readDone, done)
	}
	d.Reset()
	if s := d.Stats(); s.Writes != 0 || s.BytesWritten != 0 {
		t.Errorf("stats after reset: %+v", s)
	}
}

func TestWriteProfileOverrides(t *testing.T) {
	p := testProfile()
	p.WriteLatency = 3 * time.Microsecond
	p.WriteBandwidth = p.Bandwidth // as fast as reads
	d := mustDevice(t, p)
	done := d.Write(0, 0)
	if want := int64(time.Microsecond + 3*time.Microsecond); done != want {
		t.Errorf("write completion = %d, want %d", done, want)
	}
}

func TestWriteBandwidthBound(t *testing.T) {
	p := testProfile()
	d := mustDevice(t, p)
	const n = 500
	var last int64
	for i := 0; i < n; i++ {
		if c := d.Write(PageID(i), 0); c > last {
			last = c
		}
	}
	bw := float64(n*p.PageSize) / (float64(last) / float64(time.Second))
	if cap := p.Bandwidth / 2; bw > cap*1.001 {
		t.Errorf("write bandwidth %.3e exceeds cap %.3e", bw, cap)
	}
}
