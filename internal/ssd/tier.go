package ssd

import (
	"fmt"
	"sort"
	"strings"
)

// ArrayConfigError reports an invalid array construction: no devices, a
// page-size mismatch between members, or an invalid tier specification.
// Callers that assemble arrays from operator-supplied device lists can
// detect it with errors.As and surface the offending shard.
type ArrayConfigError struct {
	// Reason is a short machine-checkable tag: "no-devices",
	// "page-size-mismatch", or "bad-tier-spec".
	Reason string
	// Shard is the offending member index, or -1 when the problem is not
	// attributable to one member.
	Shard int
	// Detail is the human-readable explanation.
	Detail string
}

// Error implements error.
func (e *ArrayConfigError) Error() string {
	if e.Shard >= 0 {
		return fmt.Sprintf("ssd: array config (%s, shard %d): %s", e.Reason, e.Shard, e.Detail)
	}
	return fmt.Sprintf("ssd: array config (%s): %s", e.Reason, e.Detail)
}

// TierSpec describes one tier of a heterogeneous array: how many devices
// of a given profile class it contributes.
type TierSpec struct {
	// Profile is the device class shared by every shard of the tier.
	Profile Profile
	// Devices is the number of member devices (shards) in the tier.
	Devices int
}

// TierInfo describes one tier of an array as derived at construction.
type TierInfo struct {
	// Tier is the rank: 0 is the fastest (lowest read latency) tier.
	Tier int
	// Profile is the device class shared by the tier's shards.
	Profile Profile
	// Shards lists the member shard indices, ascending.
	Shards []int
}

// TierReporter is implemented by backends whose shards are grouped into
// performance tiers. A homogeneous Array (and a lone Device) is a single
// tier; serving and observability code may type-assert a Backend to this
// interface to learn the tier structure.
type TierReporter interface {
	// NumTiers returns the number of distinct device classes.
	NumTiers() int
	// TierOf returns the tier rank of a shard (0 = fastest).
	TierOf(shard int) int
	// Tier returns the tier's descriptor.
	Tier(t int) TierInfo
}

// NewTieredArray assembles a heterogeneous striped array from per-tier
// device specs: spec order determines shard numbering (the first spec's
// devices become shards 0..d0-1, and so on), while tier *ranks* are always
// assigned by read latency — the fastest class is tier 0 regardless of
// spec order. Page striping is unchanged (page p on shard p mod n), so
// which pages land on the fast tier is decided by the page-ID permutation
// the placement layer applies (placement.Retier), not by the array.
func NewTieredArray(specs []TierSpec) (*Array, error) {
	if len(specs) == 0 {
		return nil, &ArrayConfigError{Reason: "bad-tier-spec", Shard: -1, Detail: "no tier specs"}
	}
	var devs []*Device
	for i, sp := range specs {
		if sp.Devices < 1 {
			return nil, &ArrayConfigError{
				Reason: "bad-tier-spec", Shard: -1,
				Detail: fmt.Sprintf("tier spec %d (%s) has %d devices, need ≥ 1", i, sp.Profile.Name, sp.Devices),
			}
		}
		for j := 0; j < sp.Devices; j++ {
			d, err := NewDevice(sp.Profile)
			if err != nil {
				return nil, &ArrayConfigError{
					Reason: "bad-tier-spec", Shard: len(devs),
					Detail: fmt.Sprintf("tier spec %d (%s): %v", i, sp.Profile.Name, err),
				}
			}
			devs = append(devs, d)
		}
	}
	return NewArrayOf(devs)
}

// deriveTiers groups the member devices by profile name and ranks the
// groups by read latency ascending (ties broken by name for determinism),
// so tier 0 is always the fastest class. Because the grouping looks only
// at the devices, a SwapShard-rebuilt array recovers the same tier
// structure automatically.
func deriveTiers(devs []*Device) (tiers []TierInfo, tierOf []int) {
	byName := map[string]int{} // profile name → index into tiers
	for i, d := range devs {
		p := d.Profile()
		t, ok := byName[p.Name]
		if !ok {
			t = len(tiers)
			byName[p.Name] = t
			tiers = append(tiers, TierInfo{Profile: p})
		}
		tiers[t].Shards = append(tiers[t].Shards, i)
	}
	sort.SliceStable(tiers, func(i, j int) bool {
		if tiers[i].Profile.ReadLatency != tiers[j].Profile.ReadLatency {
			return tiers[i].Profile.ReadLatency < tiers[j].Profile.ReadLatency
		}
		return tiers[i].Profile.Name < tiers[j].Profile.Name
	})
	tierOf = make([]int, len(devs))
	for t := range tiers {
		tiers[t].Tier = t
		for _, s := range tiers[t].Shards {
			tierOf[s] = t
		}
	}
	return tiers, tierOf
}

// tieredName labels a heterogeneous array by its tier composition,
// fastest tier first, e.g. "Array-1xP5800X+3xP4510".
func tieredName(tiers []TierInfo) string {
	parts := make([]string, len(tiers))
	for i, t := range tiers {
		parts[i] = fmt.Sprintf("%dx%s", len(t.Shards), t.Profile.Name)
	}
	return "Array-" + strings.Join(parts, "+")
}

// NumTiers implements TierReporter.
func (a *Array) NumTiers() int { return len(a.tiers) }

// TierOf implements TierReporter.
func (a *Array) TierOf(shard int) int { return a.tierOf[shard] }

// Tier implements TierReporter. The returned Shards slice is shared; do
// not mutate it.
func (a *Array) Tier(t int) TierInfo { return a.tiers[t] }

// TierShardMap returns a copy of the shard → tier rank mapping, the input
// placement.Retier consumes.
func (a *Array) TierShardMap() []int {
	out := make([]int, len(a.tierOf))
	copy(out, a.tierOf)
	return out
}

// TierStats returns per-tier activity (member shard stats summed), indexed
// by tier rank.
func (a *Array) TierStats() []Stats {
	out := make([]Stats, len(a.tiers))
	for i, d := range a.devs {
		ds := d.Stats()
		s := &out[a.tierOf[i]]
		s.Reads += ds.Reads
		s.BytesRead += ds.BytesRead
		s.BusyNS += ds.BusyNS
		s.Errors += ds.Errors
		s.Timeouts += ds.Timeouts
		s.Corruptions += ds.Corruptions
		s.InjectedLatencyNS += ds.InjectedLatencyNS
		s.Writes += ds.Writes
		s.BytesWritten += ds.BytesWritten
	}
	return out
}

// Single-device TierReporter implementation: a lone Device is one tier.

// NumTiers implements TierReporter.
func (d *Device) NumTiers() int { return 1 }

// TierOf implements TierReporter.
func (d *Device) TierOf(int) int { return 0 }

// Tier implements TierReporter.
func (d *Device) Tier(int) TierInfo {
	return TierInfo{Tier: 0, Profile: d.Profile(), Shards: []int{0}}
}
