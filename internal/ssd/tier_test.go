package ssd

import (
	"errors"
	"reflect"
	"testing"

	"maxembed/internal/layout"
	"maxembed/internal/placement"
)

func TestNewTieredArrayDerivesTiers(t *testing.T) {
	// Spec order dense-first on purpose: tier ranks must follow read
	// latency (P5800X fastest → tier 0), not spec order.
	arr, err := NewTieredArray([]TierSpec{
		{Profile: P4510, Devices: 3},
		{Profile: P5800X, Devices: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := arr.NumShards(); got != 4 {
		t.Fatalf("NumShards = %d, want 4", got)
	}
	if got := arr.NumTiers(); got != 2 {
		t.Fatalf("NumTiers = %d, want 2", got)
	}
	if name := arr.Tier(0).Profile.Name; name != P5800X.Name {
		t.Errorf("tier 0 profile = %s, want %s (fastest first)", name, P5800X.Name)
	}
	if name := arr.Tier(1).Profile.Name; name != P4510.Name {
		t.Errorf("tier 1 profile = %s, want %s", name, P4510.Name)
	}
	// Shards 0..2 are the dense spec's devices, shard 3 the fast one.
	wantTier := []int{1, 1, 1, 0}
	for s, want := range wantTier {
		if got := arr.TierOf(s); got != want {
			t.Errorf("TierOf(%d) = %d, want %d", s, got, want)
		}
	}
	m := arr.TierShardMap()
	for s, want := range wantTier {
		if m[s] != want {
			t.Errorf("TierShardMap()[%d] = %d, want %d", s, m[s], want)
		}
	}
	if got, want := arr.Profile().Name, "Array-1xP5800X+3xP4510"; got != want {
		t.Errorf("aggregate name = %q, want %q", got, want)
	}
	if got, want := arr.Profile().ReadLatency, P5800X.ReadLatency; got != want {
		t.Errorf("aggregate read latency = %v, want fastest tier's %v", got, want)
	}
	if got, want := arr.Profile().Bandwidth, P5800X.Bandwidth+3*P4510.Bandwidth; got != want {
		t.Errorf("aggregate bandwidth = %v, want %v", got, want)
	}
}

func TestHomogeneousArrayIsOneTier(t *testing.T) {
	arr, err := NewArray(P4510, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := arr.NumTiers(); got != 1 {
		t.Fatalf("NumTiers = %d, want 1", got)
	}
	for s := 0; s < 4; s++ {
		if got := arr.TierOf(s); got != 0 {
			t.Errorf("TierOf(%d) = %d, want 0", s, got)
		}
	}
	if got, want := arr.Profile().Name, "Array-4xP4510"; got != want {
		t.Errorf("aggregate name = %q, want %q", got, want)
	}
}

func TestDeviceIsOneTier(t *testing.T) {
	d, err := NewDevice(P5800X)
	if err != nil {
		t.Fatal(err)
	}
	var tr TierReporter = d
	if tr.NumTiers() != 1 || tr.TierOf(0) != 0 {
		t.Fatalf("device tier reporting: NumTiers=%d TierOf(0)=%d", tr.NumTiers(), tr.TierOf(0))
	}
	if got := tr.Tier(0).Profile.Name; got != P5800X.Name {
		t.Errorf("Tier(0).Profile.Name = %s, want %s", got, P5800X.Name)
	}
}

func TestArrayConfigErrors(t *testing.T) {
	var cfgErr *ArrayConfigError

	if _, err := NewArray(P5800X, 0); !errors.As(err, &cfgErr) || cfgErr.Reason != "no-devices" {
		t.Errorf("NewArray(_, 0) = %v, want ArrayConfigError{no-devices}", err)
	}
	if _, err := NewArrayOf(nil); !errors.As(err, &cfgErr) || cfgErr.Reason != "no-devices" {
		t.Errorf("NewArrayOf(nil) = %v, want ArrayConfigError{no-devices}", err)
	}
	if _, err := NewTieredArray(nil); !errors.As(err, &cfgErr) || cfgErr.Reason != "bad-tier-spec" {
		t.Errorf("NewTieredArray(nil) = %v, want ArrayConfigError{bad-tier-spec}", err)
	}
	if _, err := NewTieredArray([]TierSpec{{Profile: P5800X, Devices: 0}}); !errors.As(err, &cfgErr) ||
		cfgErr.Reason != "bad-tier-spec" {
		t.Errorf("zero-device tier spec = %v, want ArrayConfigError{bad-tier-spec}", err)
	}

	small := P5800X
	small.PageSize = 512
	a, err := NewDevice(P5800X)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewDevice(small)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewArrayOf([]*Device{a, b}); !errors.As(err, &cfgErr) ||
		cfgErr.Reason != "page-size-mismatch" || cfgErr.Shard != 1 {
		t.Errorf("mixed page sizes = %v, want ArrayConfigError{page-size-mismatch, shard 1}", err)
	}
}

func TestTieredSwapShardKeepsTierStructure(t *testing.T) {
	arr, err := NewTieredArray([]TierSpec{
		{Profile: P5800X, Devices: 1},
		{Profile: P4510, Devices: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	spare, err := NewDevice(P4510)
	if err != nil {
		t.Fatal(err)
	}
	if err := arr.AttachSpare(spare); err != nil {
		t.Fatal(err)
	}
	arr.FailShard(2)
	nb, err := arr.SwapShard(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := nb.NumTiers(); got != 2 {
		t.Fatalf("NumTiers after swap = %d, want 2", got)
	}
	want := []int{0, 1, 1, 1}
	for s, w := range want {
		if got := nb.TierOf(s); got != w {
			t.Errorf("TierOf(%d) after swap = %d, want %d", s, got, w)
		}
	}
	if got := nb.Profile().Name; got != "Array-1xP5800X+3xP4510" {
		t.Errorf("aggregate name after swap = %q", got)
	}
}

// TestTierIdentityAfterFastShardSpareSwap is the regression test for tier
// identity across fail → rebuild-onto-spare → re-tier when the spare is the
// *slowest* profile (the cheapest device that can hold any shard's data,
// which is exactly what maxembed's spareProfile provisions). Replacing a
// fast-tier member with a dense spare changes the tier geometry itself, in
// two distinct ways, and the swapped array must re-derive both correctly:
//
//   - 1×P5800X + 3×P4510, fail the lone fast shard: the fast tier
//     disappears entirely — the array collapses to a single homogeneous
//     tier and every shard must report tier 0.
//   - 2×P5800X + 2×P4510, fail one fast shard: the fast tier shrinks to
//     one member and the dense tier grows to three.
//
// In both cases a subsequent placement.Retier must be driven by the
// *re-derived* TierShardMap, not the pre-failure one — the stale map ranks
// the replaced shard fast and would promote hot pages onto the dense spare.
func TestTierIdentityAfterFastShardSpareSwap(t *testing.T) {
	t.Run("collapse", func(t *testing.T) {
		arr, err := NewTieredArray([]TierSpec{
			{Profile: P5800X, Devices: 1},
			{Profile: P4510, Devices: 3},
		})
		if err != nil {
			t.Fatal(err)
		}
		staleMap := arr.TierShardMap()
		spare, err := NewDevice(P4510) // slowest tier's profile
		if err != nil {
			t.Fatal(err)
		}
		if err := arr.AttachSpare(spare); err != nil {
			t.Fatal(err)
		}
		arr.FailShard(0) // the lone fast shard
		nb, err := arr.SwapShard(0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := nb.NumTiers(); got != 1 {
			t.Fatalf("NumTiers after fast-shard swap = %d, want 1 (tier collapsed)", got)
		}
		for s := 0; s < nb.NumShards(); s++ {
			if got := nb.TierOf(s); got != 0 {
				t.Errorf("TierOf(%d) = %d, want 0", s, got)
			}
		}
		if got, want := nb.Profile().Name, "Array-4xP4510"; got != want {
			t.Errorf("aggregate name = %q, want %q", got, want)
		}
		fresh := nb.TierShardMap()
		for s, tr := range fresh {
			if tr != 0 {
				t.Errorf("TierShardMap()[%d] = %d, want 0", s, tr)
			}
		}
		// The stale 2-tier map still ranks shard 0 fast; re-tiering with it
		// would shuffle hot pages onto an ordinary dense shard. With the
		// re-derived single-tier map, Retier must keep every page in place.
		lay := layout.Vanilla(16, 2) // 8 pages over 4 shards
		heat := make([]float64, lay.NumPages())
		for p := range heat {
			heat[p] = float64(lay.NumPages() - p)
		}
		staleOut, staleRep, err := placement.Retier(lay, heat, staleMap)
		if err != nil {
			t.Fatal(err)
		}
		if staleRep.Moved == 0 {
			t.Fatal("stale tier map moved nothing — fixture no longer distinguishes stale from fresh")
		}
		out, rep, err := placement.Retier(lay, heat, fresh)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Moved != 0 {
			t.Errorf("re-derived single-tier map moved %d pages, want 0", rep.Moved)
		}
		if !reflect.DeepEqual(out.Home, lay.Home) {
			t.Error("single-tier Retier permuted pages")
		}
		if reflect.DeepEqual(staleOut.Home, out.Home) {
			t.Error("stale and fresh maps agree — fixture no longer exercises the regression")
		}
	})

	t.Run("shrink", func(t *testing.T) {
		arr, err := NewTieredArray([]TierSpec{
			{Profile: P5800X, Devices: 2},
			{Profile: P4510, Devices: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		spare, err := NewDevice(P4510)
		if err != nil {
			t.Fatal(err)
		}
		if err := arr.AttachSpare(spare); err != nil {
			t.Fatal(err)
		}
		arr.FailShard(1) // one of the two fast shards
		nb, err := arr.SwapShard(1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := nb.NumTiers(); got != 2 {
			t.Fatalf("NumTiers after swap = %d, want 2", got)
		}
		want := []int{0, 1, 1, 1} // shard 1 is dense now
		for s, w := range want {
			if got := nb.TierOf(s); got != w {
				t.Errorf("TierOf(%d) = %d, want %d", s, got, w)
			}
		}
		if got := nb.Tier(0).Shards; len(got) != 1 || got[0] != 0 {
			t.Errorf("fast tier shards = %v, want [0]", got)
		}
		if got, want := nb.Profile().Name, "Array-1xP5800X+3xP4510"; got != want {
			t.Errorf("aggregate name = %q, want %q", got, want)
		}
		// Retier with the re-derived map must respect the shrunken fast
		// tier's quota: exactly 1/4 of the pages (residue 0) can be fast.
		lay := layout.Vanilla(16, 2)
		heat := make([]float64, lay.NumPages())
		for p := range heat {
			heat[p] = float64(p) // hottest pages at the high IDs
		}
		_, rep, err := placement.Retier(lay, heat, nb.TierShardMap())
		if err != nil {
			t.Fatal(err)
		}
		if got, want := rep.TierPages[0], lay.NumPages()/4; got != want {
			t.Errorf("fast tier holds %d pages after swap, want %d", got, want)
		}
	})
}

func TestTierStatsSumShardActivity(t *testing.T) {
	arr, err := NewTieredArray([]TierSpec{
		{Profile: P5800X, Devices: 1},
		{Profile: P4510, Devices: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Page 0 → shard 0 (fast tier); pages 1..3 → shards 1..3 (dense).
	mq := NewMultiQueue(arr)
	for p := PageID(0); p < 4; p++ {
		mq.Submit(p, 0)
	}
	mq.Drain(0)
	ts := arr.TierStats()
	if len(ts) != 2 {
		t.Fatalf("TierStats len = %d, want 2", len(ts))
	}
	if ts[0].Reads != 1 || ts[1].Reads != 3 {
		t.Errorf("tier reads = %d/%d, want 1/3", ts[0].Reads, ts[1].Reads)
	}
}
