//go:build linux

package ssd

import (
	"fmt"
	"sync"
	"sync/atomic"
	"syscall"
	"unsafe"
)

// io_uring executor: a per-shard submission/completion ring driven through
// raw syscalls (io_uring_setup/io_uring_enter are numbered identically on
// every 64-bit Linux arch, having landed after the syscall-table
// unification). One driver goroutine owns the ring: it gathers requests
// from the submission channel, stamps SQEs, and reaps CQEs, so no ring
// memory is ever touched concurrently from the Go side. Sandboxed kernels
// (seccomp) commonly deny io_uring_setup; the probe fails soft and the
// backend falls back to the pread pool.
const (
	sysIOURingSetup = 425
	sysIOURingEnter = 426

	ioringOffSQRing = 0
	ioringOffCQRing = 0x8000000
	ioringOffSQEs   = 0x10000000

	ioringEnterGetevents = 1
	ioringFeatSingleMmap = 1

	ioringOpReadv = 1

	ioringMaxEntries = 32768
)

type ioSqringOffsets struct {
	head, tail, ringMask, ringEntries, flags, dropped, array, resv1 uint32
	userAddr                                                        uint64
}

type ioCqringOffsets struct {
	head, tail, ringMask, ringEntries, overflow, cqes, flags, resv1 uint32
	userAddr                                                        uint64
}

type ioUringParams struct {
	sqEntries, cqEntries, flags, sqThreadCPU, sqThreadIdle, features, wqFd uint32
	resv                                                                   [3]uint32
	sqOff                                                                  ioSqringOffsets
	cqOff                                                                  ioCqringOffsets
}

// ioUringSqe is the 64-byte submission queue entry (fields past userData
// are padding for the ops this executor issues).
type ioUringSqe struct {
	opcode   uint8
	flags    uint8
	ioprio   uint16
	fd       int32
	off      uint64
	addr     uint64
	len      uint32
	opFlags  uint32
	userData uint64
	pad      [3]uint64
}

// ioUringCqe is the 16-byte completion queue entry.
type ioUringCqe struct {
	userData uint64
	res      int32
	flags    uint32
}

// uringExec drives one shard's reads through an io_uring ring.
type uringExec struct {
	fb    *FileBackend
	shard int
	fd    int
	reqC  chan fileReq
	wg    sync.WaitGroup

	sqRing, cqRing, sqeMem []byte // mappings (sqRing may alias cqRing)

	sqHead, sqTail, sqMask *uint32
	cqHead, cqTail, cqMask *uint32
	sqArray                []uint32
	sqes                   []ioUringSqe
	cqes                   []ioUringCqe
	entries                uint32

	slots     []uringSlot
	iovecs    []syscall.Iovec
	freeSlots []uint32
}

// uringSlot tracks one in-kernel read.
type uringSlot struct {
	req     fileReq
	pageOff int
}

// newRingExecutor probes io_uring and builds a ring executor for the
// shard, reporting false when the kernel interface is unavailable (old
// kernel, seccomp) so the caller falls back to the pread pool.
func newRingExecutor(fb *FileBackend, shard, depth int) (fileExecutor, bool) {
	if depth < 1 {
		depth = 1
	}
	if depth > ioringMaxEntries {
		depth = ioringMaxEntries
	}
	var params ioUringParams
	r1, _, errno := syscall.Syscall(sysIOURingSetup, uintptr(depth), uintptr(unsafe.Pointer(&params)), 0)
	if errno != 0 {
		return nil, false
	}
	e := &uringExec{
		fb:    fb,
		shard: shard,
		fd:    int(r1),
		reqC:  make(chan fileReq, depth),
	}
	if err := e.mapRings(&params); err != nil {
		syscall.Close(e.fd)
		return nil, false
	}
	e.entries = params.sqEntries
	e.slots = make([]uringSlot, e.entries)
	e.iovecs = make([]syscall.Iovec, e.entries)
	e.freeSlots = make([]uint32, e.entries)
	for i := range e.freeSlots {
		e.freeSlots[i] = uint32(i)
	}
	e.wg.Add(1)
	go e.run()
	return e, true
}

// mapRings mmaps the submission/completion rings and the SQE array.
func (e *uringExec) mapRings(p *ioUringParams) error {
	sqSize := int(p.sqOff.array) + int(p.sqEntries)*4
	cqSize := int(p.cqOff.cqes) + int(p.cqEntries)*int(unsafe.Sizeof(ioUringCqe{}))
	single := p.features&ioringFeatSingleMmap != 0
	if single && cqSize > sqSize {
		sqSize = cqSize
	}
	sq, err := syscall.Mmap(e.fd, ioringOffSQRing, sqSize,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return err
	}
	e.sqRing = sq
	cq := sq
	if !single {
		cq, err = syscall.Mmap(e.fd, ioringOffCQRing, cqSize,
			syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
		if err != nil {
			syscall.Munmap(sq)
			return err
		}
		e.cqRing = cq
	}
	sqes, err := syscall.Mmap(e.fd, ioringOffSQEs, int(p.sqEntries)*int(unsafe.Sizeof(ioUringSqe{})),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		if e.cqRing != nil {
			syscall.Munmap(e.cqRing)
		}
		syscall.Munmap(sq)
		return err
	}
	e.sqeMem = sqes

	e.sqHead = (*uint32)(unsafe.Pointer(&sq[p.sqOff.head]))
	e.sqTail = (*uint32)(unsafe.Pointer(&sq[p.sqOff.tail]))
	e.sqMask = (*uint32)(unsafe.Pointer(&sq[p.sqOff.ringMask]))
	e.sqArray = unsafe.Slice((*uint32)(unsafe.Pointer(&sq[p.sqOff.array])), p.sqEntries)
	e.sqes = unsafe.Slice((*ioUringSqe)(unsafe.Pointer(&sqes[0])), p.sqEntries)

	e.cqHead = (*uint32)(unsafe.Pointer(&cq[p.cqOff.head]))
	e.cqTail = (*uint32)(unsafe.Pointer(&cq[p.cqOff.tail]))
	e.cqMask = (*uint32)(unsafe.Pointer(&cq[p.cqOff.ringMask]))
	e.cqes = unsafe.Slice((*ioUringCqe)(unsafe.Pointer(&cq[p.cqOff.cqes])), p.cqEntries)
	return nil
}

func (e *uringExec) submit(r fileReq) { e.reqC <- r }
func (e *uringExec) kind() string     { return "io_uring" }

func (e *uringExec) close() {
	close(e.reqC)
	e.wg.Wait()
}

// run is the ring driver: gather → stamp SQEs → enter → reap, until the
// request channel closes and the last in-kernel read drains.
func (e *uringExec) run() {
	defer e.wg.Done()
	defer e.teardown()
	fs := e.fb.files[e.shard]
	fd := int32(fs.File().Fd())
	inflight := 0
	open := true
	for open || inflight > 0 {
		// Gather: block only when the ring is empty (nothing to wait on).
		queued := 0
		if inflight == 0 && open {
			r, ok := <-e.reqC
			if !ok {
				open = false
			} else if e.prep(fd, r) {
				queued++
			}
		}
	gather:
		for open && len(e.freeSlots) > 0 {
			select {
			case r, ok := <-e.reqC:
				if !ok {
					open = false
					break gather
				}
				if e.prep(fd, r) {
					queued++
				}
			default:
				break gather
			}
		}
		inflight += queued
		if inflight == 0 {
			continue
		}
		// Submit what was stamped and wait for at least one completion.
		// Retrying the same to_submit after EINTR is safe: consumption is
		// bounded by the SQ head the kernel already advanced.
		for {
			_, _, errno := syscall.Syscall6(sysIOURingEnter, uintptr(e.fd),
				uintptr(queued), 1, ioringEnterGetevents, 0, 0)
			if errno == syscall.EINTR {
				continue
			}
			if errno != 0 {
				// Ring is wedged; fail everything in flight.
				e.failAll(errno, &inflight)
			}
			break
		}
		inflight -= e.reap()
	}
}

// prep stamps one request into a free SQE slot; on a bad page it
// completes the request immediately with the error and stamps nothing.
func (e *uringExec) prep(fd int32, r fileReq) bool {
	off, span, pageOff, err := e.fb.files[e.shard].PageSpan(r.local)
	if err != nil {
		e.complete(r, err)
		return false
	}
	si := e.freeSlots[len(e.freeSlots)-1]
	e.freeSlots = e.freeSlots[:len(e.freeSlots)-1]
	e.slots[si] = uringSlot{req: r, pageOff: pageOff}
	e.iovecs[si] = syscall.Iovec{Base: &r.buf.data[0], Len: uint64(span)}

	tail := atomic.LoadUint32(e.sqTail)
	idx := tail & *e.sqMask
	e.sqes[idx] = ioUringSqe{
		opcode:   ioringOpReadv,
		fd:       fd,
		off:      uint64(off),
		addr:     uint64(uintptr(unsafe.Pointer(&e.iovecs[si]))),
		len:      1,
		userData: uint64(si),
	}
	e.sqArray[idx] = idx
	atomic.StoreUint32(e.sqTail, tail+1)
	return true
}

// reap drains the completion ring, finishing each read.
func (e *uringExec) reap() int {
	n := 0
	head := atomic.LoadUint32(e.cqHead)
	tail := atomic.LoadUint32(e.cqTail)
	for head != tail {
		cqe := e.cqes[head&*e.cqMask]
		head++
		si := uint32(cqe.userData)
		slot := e.slots[si]
		e.slots[si] = uringSlot{}
		e.freeSlots = append(e.freeSlots, si)
		var err error
		got := 0
		if cqe.res < 0 {
			err = fmt.Errorf("ssd: io_uring read: %w", syscall.Errno(-cqe.res))
		} else {
			got = int(cqe.res)
		}
		if cerr := e.fb.files[e.shard].CheckSpanRead(slot.req.local, slot.pageOff, got, err); cerr != nil {
			e.complete(slot.req, cerr)
		} else {
			slot.req.buf.img = slot.req.buf.data[slot.pageOff : slot.pageOff+e.fb.files[e.shard].PageSize()]
			e.complete(slot.req, nil)
		}
		n++
	}
	atomic.StoreUint32(e.cqHead, head)
	return n
}

// failAll completes every in-kernel read with errno (enter failed hard).
func (e *uringExec) failAll(errno syscall.Errno, inflight *int) {
	for si := range e.slots {
		if e.slots[si].req.out == nil {
			continue
		}
		e.complete(e.slots[si].req, fmt.Errorf("ssd: io_uring enter: %w", errno))
		e.slots[si] = uringSlot{}
		e.freeSlots = append(e.freeSlots, uint32(si))
		*inflight--
	}
}

// complete records the read outcome and pushes the completion.
func (e *uringExec) complete(r fileReq, err error) {
	end := e.fb.wallNS()
	e.fb.shards[e.shard].recordExternalRead(end-r.submitWall, err, false)
	e.fb.hists[e.shard].observe(end - r.submitWall)
	r.out.push(fileComp{
		global:       r.global,
		buf:          r.buf,
		err:          err,
		submitVirt:   r.submitVirt,
		completeWall: end,
	})
}

// teardown unmaps the rings and closes the ring fd.
func (e *uringExec) teardown() {
	if e.sqeMem != nil {
		syscall.Munmap(e.sqeMem)
	}
	if e.cqRing != nil {
		syscall.Munmap(e.cqRing)
	}
	if e.sqRing != nil {
		syscall.Munmap(e.sqRing)
	}
	syscall.Close(e.fd)
}
