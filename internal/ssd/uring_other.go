//go:build !linux

package ssd

// newRingExecutor reports io_uring unavailable off Linux; the file
// backend always falls back to the portable pread pool.
func newRingExecutor(*FileBackend, int, int) (fileExecutor, bool) {
	return nil, false
}
