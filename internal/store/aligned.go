package store

import "unsafe"

// directIOAlign is the alignment O_DIRECT requires for buffer addresses,
// file offsets, and transfer sizes. 4096 covers every modern NVMe device
// (logical block size 512 or 4096). The constant (and AlignedBuf) live in
// a portable file because the asynchronous file backend sizes its
// completion buffers with them on every platform, even where the direct
// open path itself is Linux-only.
const directIOAlign = 4096

// DirectIOAlign returns the alignment direct I/O reads are issued at.
func DirectIOAlign() int { return directIOAlign }

// AlignedBuf returns a size-byte slice whose address is directIOAlign-
// aligned, carved from a larger allocation.
func AlignedBuf(size int) []byte {
	raw := make([]byte, size+directIOAlign)
	off := 0
	if rem := uintptr(unsafe.Pointer(&raw[0])) % directIOAlign; rem != 0 {
		off = int(directIOAlign - rem)
	}
	return raw[off : off+size]
}

// alignedBuf is the package-internal spelling predating AlignedBuf.
func alignedBuf(size int) []byte { return AlignedBuf(size) }

// bufAddr returns the address of the first byte of b (test helper).
func bufAddr(b []byte) uintptr { return uintptr(unsafe.Pointer(&b[0])) }
