//go:build linux

package store

// openDirectFn is the direct-open implementation OpenFileAuto tries first;
// a test hook replaces it to exercise the EINVAL fallback deterministically
// (tmpfs and some overlay filesystems reject O_DIRECT at open or first
// read).
var openDirectFn = OpenFileDirect

// OpenFileAuto opens a serialized store with O_DIRECT when the filesystem
// supports it, falling back to buffered reads when the direct open or its
// read probe fails (EINVAL on tmpfs/overlayfs, EPERM under some sandboxes).
// The second result reports whether the direct path was taken.
func OpenFileAuto(path string) (*FileStore, bool, error) {
	if s, err := openDirectFn(path); err == nil {
		return s, true, nil
	}
	s, err := OpenFile(path)
	return s, false, err
}
