//go:build linux

package store

import (
	"errors"
	"syscall"
	"testing"

	"maxembed/internal/layout"
)

// TestOpenFileAutoEINVALFallback forces the direct open to fail the way
// tmpfs does (EINVAL) and checks that OpenFileAuto lands on the buffered
// path with a fully working store.
func TestOpenFileAutoEINVALFallback(t *testing.T) {
	path, mem, lay := writeTestStore(t)
	orig := openDirectFn
	openDirectFn = func(string) (*FileStore, error) {
		return nil, syscall.EINVAL
	}
	defer func() { openDirectFn = orig }()

	fs, direct, err := OpenFileAuto(path)
	if err != nil {
		t.Fatalf("OpenFileAuto with EINVAL direct open: %v", err)
	}
	defer fs.Close()
	if direct || fs.Direct() {
		t.Fatal("fallback store claims to be direct")
	}
	var got, want []float32
	for k := layout.Key(0); int(k) < lay.NumKeys; k += 7 {
		p := lay.Home[k]
		var ok bool
		got, ok, err = fs.Extract(p, k, len(lay.Pages[p]), got[:0])
		if err != nil || !ok {
			t.Fatalf("key %d: ok=%v err=%v", k, ok, err)
		}
		want, _, _ = mem.Extract(p, k, len(lay.Pages[p]), want[:0])
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("vector mismatch for key %d", k)
			}
		}
	}
}

// TestDirectOddPageSize runs the O_DIRECT path on a page size that is not
// a multiple of the probed sector size; every page read crosses alignment
// boundaries at a different interior offset.
func TestDirectOddPageSize(t *testing.T) {
	path, mem, lay := writeStoreWith(t, 1032, 4, 50)
	fs, err := OpenFileDirect(path)
	if err != nil {
		if errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.EOPNOTSUPP) {
			t.Skipf("O_DIRECT unsupported here: %v", err)
		}
		t.Fatalf("OpenFileDirect: %v", err)
	}
	defer fs.Close()
	buf := fs.NewReadBuf()
	for p := 0; p < fs.NumPages(); p++ {
		img, err := fs.ReadPageWindow(layout.PageID(p), buf)
		if err != nil {
			t.Fatalf("page %d (last=%v): %v", p, p == fs.NumPages()-1, err)
		}
		want, _ := mem.Page(layout.PageID(p))
		for i := range want {
			if img[i] != want[i] {
				t.Fatalf("page %d byte %d differs", p, i)
			}
		}
	}
	var got []float32
	for k := layout.Key(0); int(k) < lay.NumKeys; k++ {
		p := lay.Home[k]
		var ok bool
		got, ok, err = fs.Extract(p, k, len(lay.Pages[p]), got[:0])
		if err != nil || !ok {
			t.Fatalf("key %d: ok=%v err=%v", k, ok, err)
		}
	}
}
