//go:build !linux

package store

// OpenFileAuto opens a serialized store for buffered reads; O_DIRECT is
// Linux-only, so the direct path is never taken here and the second result
// is always false.
func OpenFileAuto(path string) (*FileStore, bool, error) {
	s, err := OpenFile(path)
	return s, false, err
}
