package store

import (
	"encoding/binary"
	"errors"
	"testing"

	"maxembed/internal/embedding"
	"maxembed/internal/layout"
)

func TestExtractDetectsCorruptVector(t *testing.T) {
	s, lay, _ := buildTestStore(t)
	k := layout.Key(42)
	p := lay.Home[k]
	img, err := s.Page(p)
	if err != nil {
		t.Fatal(err)
	}
	// Locate k's slot and flip one payload byte.
	slot := embedding.SlotSize(s.Dim())
	for i := range lay.Pages[p] {
		if binary.LittleEndian.Uint32(img[i*slot:]) != k {
			continue
		}
		img[i*slot+8] ^= 0x01
		_, found, err := s.Extract(p, k, len(lay.Pages[p]), nil)
		if !found {
			t.Fatal("corrupt slot not even found")
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Extract on damaged payload: err = %v, want ErrCorrupt", err)
		}
		// Repair and verify the checksum passes again.
		img[i*slot+8] ^= 0x01
		if _, _, err := s.Extract(p, k, len(lay.Pages[p]), nil); err != nil {
			t.Fatalf("repaired slot still fails: %v", err)
		}
		return
	}
	t.Fatalf("key %d not found on its home page", k)
}

func TestExtractDetectsCorruptKeyHeader(t *testing.T) {
	// The checksum covers the key header too: a bit flip that rewrites a
	// slot's key to another queried key must not serve the wrong vector.
	s, lay, _ := buildTestStore(t)
	a, b := layout.Key(1), layout.Key(2) // vanilla layout: same page
	p := lay.Home[a]
	if lay.Home[b] != p {
		t.Fatalf("fixture keys not co-located: %d vs %d", p, lay.Home[b])
	}
	img, err := s.Page(p)
	if err != nil {
		t.Fatal(err)
	}
	slot := embedding.SlotSize(s.Dim())
	for i := range lay.Pages[p] {
		if binary.LittleEndian.Uint32(img[i*slot:]) != a {
			continue
		}
		binary.LittleEndian.PutUint32(img[i*slot:], b)
		_, found, err := s.Extract(p, b, len(lay.Pages[p]), nil)
		if found && err == nil {
			t.Fatal("header-corrupted slot served as key b without a checksum error")
		}
		binary.LittleEndian.PutUint32(img[i*slot:], a)
		return
	}
	t.Fatalf("key %d not found on its home page", a)
}

func TestReadPageCopies(t *testing.T) {
	s, lay, _ := buildTestStore(t)
	buf := make([]byte, s.PageSize())
	if err := s.ReadPage(0, buf); err != nil {
		t.Fatal(err)
	}
	// Mutating the host buffer must not damage the store (DMA-copy
	// semantics the serving engine's corruption injection relies on).
	for i := range buf {
		buf[i] = 0xFF
	}
	if _, _, err := s.Extract(0, lay.Pages[0][0], len(lay.Pages[0]), nil); err != nil {
		t.Fatalf("store damaged through ReadPage buffer: %v", err)
	}
	if err := s.ReadPage(0, make([]byte, 10)); err == nil {
		t.Error("short buffer accepted")
	}
	if err := s.ReadPage(layout.PageID(s.NumPages()), buf); err == nil {
		t.Error("out-of-range page accepted")
	}
}
