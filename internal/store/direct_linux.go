//go:build linux

package store

import (
	"fmt"
	"io"
	"os"
	"syscall"
	"unsafe"

	"maxembed/internal/layout"
)

// directIOAlign is the alignment O_DIRECT requires for buffer addresses,
// file offsets, and transfer sizes. 4096 covers every modern NVMe device
// (logical block size 512 or 4096).
const directIOAlign = 4096

// OpenFileDirect opens a serialized store for page reads that bypass the
// OS page cache (O_DIRECT) — the access mode the paper's SPDK deployment
// implies, where the DRAM cache is managed explicitly (CacheLib) and
// double-caching in the kernel would waste memory and distort measurements.
//
// O_DIRECT demands sector-aligned offsets, sizes, and buffer addresses.
// The store's header precedes the page data, so page offsets in the file
// are not sector-aligned; reads therefore cover the aligned window
// enclosing the page and copy the page out — the page-aligned-control
// awkwardness direct I/O imposes, handled here once.
//
// Filesystems without O_DIRECT support (notably tmpfs) make Open or the
// first read fail with EINVAL; callers should fall back to OpenFile.
func OpenFileDirect(path string) (*FileStore, error) {
	// Read the header through a normal descriptor first.
	plain, err := OpenFile(path)
	if err != nil {
		return nil, err
	}
	plain.Close()

	f, err := os.OpenFile(path, os.O_RDONLY|syscall.O_DIRECT, 0)
	if err != nil {
		return nil, fmt.Errorf("store: O_DIRECT open: %w", err)
	}
	s := &FileStore{
		f:        f,
		pageSize: plain.pageSize,
		dim:      plain.dim,
		numPages: plain.numPages,
		dataOff:  plain.dataOff,
		direct:   true,
	}
	// Each pooled buffer covers the aligned window of one page: up to one
	// alignment block of slack on each side.
	s.bufs.New = func() any {
		b := alignedBuf(s.pageSize + 2*directIOAlign)
		return &b
	}
	// Probe: some filesystems accept the open but fail reads.
	probe := alignedBuf(directIOAlign)
	if _, err := f.ReadAt(probe, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: O_DIRECT read probe: %w", err)
	}
	return s, nil
}

// alignedBuf returns a size-byte slice whose address is directIOAlign-
// aligned, carved from a larger allocation.
func alignedBuf(size int) []byte {
	raw := make([]byte, size+directIOAlign)
	off := 0
	if rem := uintptr(unsafe.Pointer(&raw[0])) % directIOAlign; rem != 0 {
		off = int(directIOAlign - rem)
	}
	return raw[off : off+size]
}

// readPageDirect reads page p through the O_DIRECT descriptor into buf
// (an aligned pool buffer) and returns the page's bytes within it.
func (s *FileStore) readPageDirect(p layout.PageID, buf []byte) ([]byte, error) {
	want := s.dataOff + int64(p)*int64(s.pageSize)
	start := want &^ (directIOAlign - 1) // round down to alignment
	span := int(want-start) + s.pageSize
	// Round the span up to a whole number of blocks.
	span = (span + directIOAlign - 1) &^ (directIOAlign - 1)
	n, err := s.f.ReadAt(buf[:span], start)
	// A read ending at EOF may return fewer bytes; the page must still be
	// fully covered.
	if covered := n - int(want-start); covered < s.pageSize {
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("store: O_DIRECT read of page %d: %w", p, err)
	}
	return buf[want-start : int64(want-start)+int64(s.pageSize)], nil
}

// bufAddr returns the address of the first byte of b (test helper).
func bufAddr(b []byte) uintptr { return uintptr(unsafe.Pointer(&b[0])) }
