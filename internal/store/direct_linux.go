//go:build linux

package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"syscall"
)

// OpenFileDirect opens a serialized store for page reads that bypass the
// OS page cache (O_DIRECT) — the access mode the paper's SPDK deployment
// implies, where the DRAM cache is managed explicitly (CacheLib) and
// double-caching in the kernel would waste memory and distort measurements.
//
// O_DIRECT demands sector-aligned offsets, sizes, and buffer addresses.
// The store's header precedes the page data, so page offsets in the file
// are not sector-aligned; reads therefore cover the aligned window
// enclosing the page and copy the page out — the page-aligned-control
// awkwardness direct I/O imposes, handled here once.
//
// Filesystems without O_DIRECT support (notably tmpfs) make Open or the
// first read fail with EINVAL; callers should fall back to OpenFile.
func OpenFileDirect(path string) (*FileStore, error) {
	// Read the header through a normal descriptor first.
	plain, err := OpenFile(path)
	if err != nil {
		return nil, err
	}
	plain.Close()

	f, err := os.OpenFile(path, os.O_RDONLY|syscall.O_DIRECT, 0)
	if err != nil {
		return nil, fmt.Errorf("store: O_DIRECT open: %w", err)
	}
	s := &FileStore{
		f:        f,
		pageSize: plain.pageSize,
		dim:      plain.dim,
		numPages: plain.numPages,
		dataOff:  plain.dataOff,
		direct:   true,
	}
	// Each pooled buffer covers the aligned window of one page: up to one
	// alignment block of slack on each side.
	s.bufs.New = func() any {
		b := alignedBuf(s.ReadBufSize())
		return &b
	}
	// Probe: some filesystems accept the open but fail reads. A store
	// smaller than one alignment block legitimately answers the probe with
	// a short read at EOF — only a zero-byte or erroring probe disqualifies
	// the direct path.
	probe := alignedBuf(directIOAlign)
	if n, err := f.ReadAt(probe, 0); err != nil && !(errors.Is(err, io.EOF) && n > 0) {
		f.Close()
		return nil, fmt.Errorf("store: O_DIRECT read probe: %w", err)
	}
	return s, nil
}

