//go:build linux

package store

import (
	"errors"
	"syscall"
	"testing"

	"maxembed/internal/layout"
)

// openDirectOrSkip opens the store with O_DIRECT, skipping on filesystems
// that do not support it (tmpfs, some CI overlays).
func openDirectOrSkip(t *testing.T, path string) *FileStore {
	t.Helper()
	fs, err := OpenFileDirect(path)
	if err != nil {
		if errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.EOPNOTSUPP) {
			t.Skipf("O_DIRECT unsupported here: %v", err)
		}
		t.Fatalf("OpenFileDirect: %v", err)
	}
	return fs
}

func TestDirectIOMatchesBuffered(t *testing.T) {
	path, mem, lay := writeTestStore(t)
	fs := openDirectOrSkip(t, path)
	defer fs.Close()
	if !fs.direct {
		t.Fatal("direct flag not set")
	}
	var a, b []float32
	for k := layout.Key(0); int(k) < lay.NumKeys; k++ {
		p := lay.Home[k]
		var okA, okB bool
		var err error
		a, okA, err = mem.Extract(p, k, len(lay.Pages[p]), a[:0])
		if err != nil {
			t.Fatal(err)
		}
		b, okB, err = fs.Extract(p, k, len(lay.Pages[p]), b[:0])
		if err != nil {
			t.Fatalf("direct extract key %d: %v", k, err)
		}
		if okA != okB {
			t.Fatalf("presence mismatch for key %d", k)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("vector mismatch for key %d", k)
			}
		}
	}
	// ReadPage path too.
	img := make([]byte, fs.PageSize())
	if err := fs.ReadPage(0, img); err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	memImg, _ := mem.Page(0)
	for i := range memImg {
		if img[i] != memImg[i] {
			t.Fatal("direct ReadPage bytes differ from in-memory store")
		}
	}
}

func TestAlignedBuf(t *testing.T) {
	for _, size := range []int{1, 4096, 12288} {
		b := alignedBuf(size)
		if len(b) != size {
			t.Errorf("alignedBuf(%d) len = %d", size, len(b))
		}
		if addr := bufAddr(b); addr%directIOAlign != 0 {
			t.Errorf("alignedBuf(%d) address %x not aligned", size, addr)
		}
	}
}
