package store

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"

	"maxembed/internal/layout"
)

// FileStore serves page images from a file written by Store.WriteTo,
// reading pages on demand with page-aligned ReadAt calls instead of
// holding the table in memory — the deployment shape the paper assumes,
// where the embedding table lives on the SSD and only the indexes are
// DRAM-resident. FileStore is safe for concurrent use.
//
// Page fetch timing in the serving engine comes from the simulated device;
// FileStore provides the payload path. OpenFile uses buffered reads; on
// Linux, OpenFileDirect bypasses the OS page cache with O_DIRECT and the
// aligned-buffer handling that requires.
type FileStore struct {
	f        *os.File
	pageSize int
	dim      int
	numPages int
	dataOff  int64
	direct   bool // O_DIRECT descriptor; reads must be aligned
	bufs     sync.Pool
	refs     sync.Pool // *PageRef shells for ReadPageRef
}

// OpenFile opens a serialized store for on-demand page reads.
func OpenFile(path string) (*FileStore, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, len(storeMagic)+12)
	if _, err := io.ReadFull(f, hdr); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: header: %v", ErrBadStore, err)
	}
	if string(hdr[:len(storeMagic)]) != storeMagic {
		f.Close()
		return nil, fmt.Errorf("%w: bad magic", ErrBadStore)
	}
	s := &FileStore{
		f:        f,
		pageSize: int(binary.LittleEndian.Uint32(hdr[len(storeMagic):])),
		dim:      int(binary.LittleEndian.Uint32(hdr[len(storeMagic)+4:])),
		numPages: int(binary.LittleEndian.Uint32(hdr[len(storeMagic)+8:])),
		dataOff:  int64(len(hdr)),
	}
	if s.pageSize <= 0 || s.dim <= 0 || s.numPages < 0 {
		f.Close()
		return nil, fmt.Errorf("%w: implausible header %d/%d/%d", ErrBadStore, s.pageSize, s.dim, s.numPages)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if want := s.dataOff + int64(s.pageSize)*int64(s.numPages); st.Size() < want {
		f.Close()
		return nil, fmt.Errorf("%w: file holds %d bytes, need %d", ErrBadStore, st.Size(), want)
	}
	s.bufs.New = func() any {
		b := make([]byte, s.pageSize)
		return &b
	}
	return s, nil
}

// Close releases the underlying file.
func (s *FileStore) Close() error { return s.f.Close() }

// PageSize returns the page size in bytes.
func (s *FileStore) PageSize() int { return s.pageSize }

// Dim returns the embedding dimension.
func (s *FileStore) Dim() int { return s.dim }

// NumPages returns the number of pages.
func (s *FileStore) NumPages() int { return s.numPages }

// Direct reports whether reads bypass the OS page cache (O_DIRECT).
func (s *FileStore) Direct() bool { return s.direct }

// File returns the underlying descriptor. External read executors (the
// ssd file backend's io_uring ring) issue their own reads against it using
// PageSpan geometry; they must not change the descriptor's offset or close
// it.
func (s *FileStore) File() *os.File { return s.f }

// ReadBufSize returns the buffer size ReadPageWindow requires: the aligned
// window enclosing one page under O_DIRECT, or exactly one page otherwise.
func (s *FileStore) ReadBufSize() int {
	if s.direct {
		return s.pageSize + 2*directIOAlign
	}
	return s.pageSize
}

// NewReadBuf allocates a buffer suitable for ReadPageWindow: aligned for
// the direct path, plain otherwise.
func (s *FileStore) NewReadBuf() []byte {
	if s.direct {
		return alignedBuf(s.ReadBufSize())
	}
	return make([]byte, s.ReadBufSize())
}

// PageSpan returns the file-read geometry of page p: the offset and span
// of the read to issue, and the page's offset within the returned bytes.
// Under O_DIRECT the read covers the aligned window enclosing the page
// (the store header precedes the data, so page offsets are never
// sector-aligned); otherwise it is the page itself. External executors
// (io_uring) use this to build submission entries without going through
// ReadPageWindow.
func (s *FileStore) PageSpan(p layout.PageID) (off int64, span, pageOff int, err error) {
	if int(p) >= s.numPages {
		return 0, 0, 0, fmt.Errorf("store: page %d out of range (%d pages)", p, s.numPages)
	}
	want := s.dataOff + int64(p)*int64(s.pageSize)
	if !s.direct {
		return want, s.pageSize, 0, nil
	}
	start := want &^ (directIOAlign - 1) // round down to alignment
	span = int(want-start) + s.pageSize
	// Round the span up to a whole number of blocks.
	span = (span + directIOAlign - 1) &^ (directIOAlign - 1)
	return start, span, int(want - start), nil
}

// CheckSpanRead validates the byte count an external executor's read of
// PageSpan(p) geometry returned: a read ending at EOF may be short, but
// the page itself must be fully covered.
func (s *FileStore) CheckSpanRead(p layout.PageID, pageOff, n int, err error) error {
	if covered := n - pageOff; covered < s.pageSize {
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		return fmt.Errorf("store: read of page %d: %w", p, err)
	}
	return nil
}

// ReadPageWindow reads page p into buf — a caller-owned buffer of at least
// ReadBufSize bytes (aligned when Direct; see NewReadBuf) — and returns
// the page's bytes within it. No pooling, no copies: this is the zero-copy
// primitive the asynchronous file backend's completion buffers are filled
// through; the returned slice aliases buf and stays valid until the caller
// reuses it.
func (s *FileStore) ReadPageWindow(p layout.PageID, buf []byte) ([]byte, error) {
	off, span, pageOff, err := s.PageSpan(p)
	if err != nil {
		return nil, err
	}
	if len(buf) < span {
		return nil, fmt.Errorf("store: window buffer of %d bytes, need %d", len(buf), span)
	}
	n, err := s.f.ReadAt(buf[:span], off)
	if cerr := s.CheckSpanRead(p, pageOff, n, err); cerr != nil {
		return nil, cerr
	}
	return buf[pageOff : pageOff+s.pageSize], nil
}

// readPageDirect reads page p through the O_DIRECT descriptor into buf
// (an aligned pool buffer) and returns the page's bytes within it.
func (s *FileStore) readPageDirect(p layout.PageID, buf []byte) ([]byte, error) {
	return s.ReadPageWindow(p, buf)
}

// ReadPage reads page p into dst (which must be at least PageSize bytes).
//
// dst is an arbitrary caller buffer, so under O_DIRECT the aligned window
// read necessarily lands in a pooled aligned buffer and the page is copied
// out — one copy, forced by the API shape. Callers that can consume the
// page in place should use ReadPageRef (pooled, copy-free) instead.
func (s *FileStore) ReadPage(p layout.PageID, dst []byte) error {
	if int(p) >= s.numPages {
		return fmt.Errorf("store: page %d out of range (%d pages)", p, s.numPages)
	}
	if len(dst) < s.pageSize {
		return fmt.Errorf("store: buffer of %d bytes, need %d", len(dst), s.pageSize)
	}
	if s.direct {
		bufp := s.bufs.Get().(*[]byte)
		defer s.bufs.Put(bufp)
		img, err := s.ReadPageWindow(p, *bufp)
		if err != nil {
			return err
		}
		copy(dst[:s.pageSize], img)
		return nil
	}
	_, err := s.f.ReadAt(dst[:s.pageSize], s.dataOff+int64(p)*int64(s.pageSize))
	return err
}

// PageRef is a pooled, zero-copy view of one page image read by
// ReadPageRef. Bytes stays valid until Release, which returns the buffer
// (and the ref itself) to the store's pools. A PageRef must be released
// exactly once and not used after.
type PageRef struct {
	img []byte
	buf *[]byte
	s   *FileStore
}

// Bytes returns the page image. The slice aliases a pooled buffer; it is
// invalid after Release.
func (r *PageRef) Bytes() []byte { return r.img }

// Release returns the ref's buffer to the store's pool.
func (r *PageRef) Release() {
	s, buf := r.s, r.buf
	r.img, r.buf, r.s = nil, nil, nil
	if s != nil && buf != nil {
		s.bufs.Put(buf)
		s.refs.Put(r)
	}
}

// ReadPageRef reads page p and returns a pooled view of its image without
// copying it out of the read buffer — the fix for the direct path's
// historical double-buffering (window read into a pooled aligned buffer,
// then a copy to the caller). Steady-state calls allocate nothing; the
// caller must Release the ref when done with Bytes.
func (s *FileStore) ReadPageRef(p layout.PageID) (*PageRef, error) {
	if int(p) >= s.numPages {
		return nil, fmt.Errorf("store: page %d out of range (%d pages)", p, s.numPages)
	}
	bufp := s.bufs.Get().(*[]byte)
	var (
		img []byte
		err error
	)
	if s.direct {
		img, err = s.ReadPageWindow(p, *bufp)
	} else {
		img = (*bufp)[:s.pageSize]
		_, err = s.f.ReadAt(img, s.dataOff+int64(p)*int64(s.pageSize))
	}
	if err != nil {
		s.bufs.Put(bufp)
		return nil, err
	}
	ref, _ := s.refs.Get().(*PageRef)
	if ref == nil {
		ref = new(PageRef)
	}
	ref.img, ref.buf, ref.s = img, bufp, s
	return ref, nil
}

// Extract reads page p, scans its first nSlots slots for key k, verifies
// the slot checksum, and appends the decoded vector to dst (see
// Store.Extract).
func (s *FileStore) Extract(p layout.PageID, k layout.Key, nSlots int, dst []float32) ([]float32, bool, error) {
	if int(p) >= s.numPages {
		return dst, false, fmt.Errorf("store: page %d out of range (%d pages)", p, s.numPages)
	}
	bufp := s.bufs.Get().(*[]byte)
	defer s.bufs.Put(bufp)
	var img []byte
	if s.direct {
		var err error
		img, err = s.readPageDirect(p, *bufp)
		if err != nil {
			return dst, false, err
		}
	} else {
		img = (*bufp)[:s.pageSize]
		if _, err := s.f.ReadAt(img, s.dataOff+int64(p)*int64(s.pageSize)); err != nil {
			return dst, false, err
		}
	}
	return ExtractFromImage(img, s.dim, k, nSlots, dst)
}
