package store

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"

	"maxembed/internal/layout"
)

// FileStore serves page images from a file written by Store.WriteTo,
// reading pages on demand with page-aligned ReadAt calls instead of
// holding the table in memory — the deployment shape the paper assumes,
// where the embedding table lives on the SSD and only the indexes are
// DRAM-resident. FileStore is safe for concurrent use.
//
// Page fetch timing in the serving engine comes from the simulated device;
// FileStore provides the payload path. OpenFile uses buffered reads; on
// Linux, OpenFileDirect bypasses the OS page cache with O_DIRECT and the
// aligned-buffer handling that requires.
type FileStore struct {
	f        *os.File
	pageSize int
	dim      int
	numPages int
	dataOff  int64
	direct   bool // O_DIRECT descriptor; reads must be aligned
	bufs     sync.Pool
}

// OpenFile opens a serialized store for on-demand page reads.
func OpenFile(path string) (*FileStore, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, len(storeMagic)+12)
	if _, err := io.ReadFull(f, hdr); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: header: %v", ErrBadStore, err)
	}
	if string(hdr[:len(storeMagic)]) != storeMagic {
		f.Close()
		return nil, fmt.Errorf("%w: bad magic", ErrBadStore)
	}
	s := &FileStore{
		f:        f,
		pageSize: int(binary.LittleEndian.Uint32(hdr[len(storeMagic):])),
		dim:      int(binary.LittleEndian.Uint32(hdr[len(storeMagic)+4:])),
		numPages: int(binary.LittleEndian.Uint32(hdr[len(storeMagic)+8:])),
		dataOff:  int64(len(hdr)),
	}
	if s.pageSize <= 0 || s.dim <= 0 || s.numPages < 0 {
		f.Close()
		return nil, fmt.Errorf("%w: implausible header %d/%d/%d", ErrBadStore, s.pageSize, s.dim, s.numPages)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if want := s.dataOff + int64(s.pageSize)*int64(s.numPages); st.Size() < want {
		f.Close()
		return nil, fmt.Errorf("%w: file holds %d bytes, need %d", ErrBadStore, st.Size(), want)
	}
	s.bufs.New = func() any {
		b := make([]byte, s.pageSize)
		return &b
	}
	return s, nil
}

// Close releases the underlying file.
func (s *FileStore) Close() error { return s.f.Close() }

// PageSize returns the page size in bytes.
func (s *FileStore) PageSize() int { return s.pageSize }

// Dim returns the embedding dimension.
func (s *FileStore) Dim() int { return s.dim }

// NumPages returns the number of pages.
func (s *FileStore) NumPages() int { return s.numPages }

// ReadPage reads page p into dst (which must be at least PageSize bytes).
func (s *FileStore) ReadPage(p layout.PageID, dst []byte) error {
	if int(p) >= s.numPages {
		return fmt.Errorf("store: page %d out of range (%d pages)", p, s.numPages)
	}
	if len(dst) < s.pageSize {
		return fmt.Errorf("store: buffer of %d bytes, need %d", len(dst), s.pageSize)
	}
	if s.direct {
		bufp := s.bufs.Get().(*[]byte)
		defer s.bufs.Put(bufp)
		img, err := s.readPageDirect(p, *bufp)
		if err != nil {
			return err
		}
		copy(dst[:s.pageSize], img)
		return nil
	}
	_, err := s.f.ReadAt(dst[:s.pageSize], s.dataOff+int64(p)*int64(s.pageSize))
	return err
}

// Extract reads page p, scans its first nSlots slots for key k, verifies
// the slot checksum, and appends the decoded vector to dst (see
// Store.Extract).
func (s *FileStore) Extract(p layout.PageID, k layout.Key, nSlots int, dst []float32) ([]float32, bool, error) {
	if int(p) >= s.numPages {
		return dst, false, fmt.Errorf("store: page %d out of range (%d pages)", p, s.numPages)
	}
	bufp := s.bufs.Get().(*[]byte)
	defer s.bufs.Put(bufp)
	var img []byte
	if s.direct {
		var err error
		img, err = s.readPageDirect(p, *bufp)
		if err != nil {
			return dst, false, err
		}
	} else {
		img = (*bufp)[:s.pageSize]
		if _, err := s.f.ReadAt(img, s.dataOff+int64(p)*int64(s.pageSize)); err != nil {
			return dst, false, err
		}
	}
	return ExtractFromImage(img, s.dim, k, nSlots, dst)
}
