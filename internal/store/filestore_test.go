package store

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"maxembed/internal/layout"
)

func writeTestStore(t *testing.T) (string, *Store, *layout.Layout) {
	t.Helper()
	s, lay, _ := buildTestStore(t)
	path := filepath.Join(t.TempDir(), "store.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, s, lay
}

func TestFileStoreMatchesMemoryStore(t *testing.T) {
	path, mem, lay := writeTestStore(t)
	fs, err := OpenFile(path)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	defer fs.Close()
	if fs.Dim() != mem.Dim() || fs.PageSize() != mem.PageSize() || fs.NumPages() != mem.NumPages() {
		t.Fatalf("header mismatch: %d/%d/%d", fs.Dim(), fs.PageSize(), fs.NumPages())
	}
	var a, b []float32
	var pages []layout.PageID
	for k := layout.Key(0); int(k) < lay.NumKeys; k++ {
		pages = lay.PagesOf(k, pages[:0])
		for _, p := range pages {
			var okA, okB bool
			var err error
			a, okA, err = mem.Extract(p, k, len(lay.Pages[p]), a[:0])
			if err != nil {
				t.Fatal(err)
			}
			b, okB, err = fs.Extract(p, k, len(lay.Pages[p]), b[:0])
			if err != nil {
				t.Fatal(err)
			}
			if okA != okB {
				t.Fatalf("presence mismatch for key %d page %d", k, p)
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("vector mismatch for key %d page %d", k, p)
				}
			}
		}
	}
}

func TestFileStoreMissingKey(t *testing.T) {
	path, _, lay := writeTestStore(t)
	fs, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	p := lay.Home[99]
	_, ok, err := fs.Extract(p, 0, len(lay.Pages[p]), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("found key not on page")
	}
	if _, _, err := fs.Extract(layout.PageID(fs.NumPages()), 0, -1, nil); err == nil {
		t.Error("out-of-range page accepted")
	}
}

func TestFileStoreConcurrent(t *testing.T) {
	path, _, lay := writeTestStore(t)
	fs, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var buf []float32
			for k := layout.Key(w); int(k) < lay.NumKeys; k += 8 {
				p := lay.Home[k]
				var ok bool
				var err error
				buf, ok, err = fs.Extract(p, k, len(lay.Pages[p]), buf[:0])
				if err != nil || !ok {
					t.Errorf("key %d: ok=%v err=%v", k, ok, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestOpenFileErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := OpenFile(filepath.Join(dir, "missing.bin")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.bin")
	if err := os.WriteFile(bad, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(bad); err == nil {
		t.Error("garbage file accepted")
	}
	// Truncated payload.
	path, s, _ := writeTestStore(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	short := filepath.Join(dir, "short.bin")
	if err := os.WriteFile(short, data[:len(data)-s.PageSize()], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(short); err == nil {
		t.Error("truncated file accepted")
	}
}
