package store

import (
	"encoding/binary"
	"fmt"

	"maxembed/internal/embedding"
	"maxembed/internal/layout"
)

// Sharded holds one layout's page images striped across n per-device
// stores: global page p lives in shard p mod n at local index p div n —
// the same striping ssd.Array uses, so each shard store holds exactly the
// pages its device serves and store-backed integrity paths (per-slot
// checksums, corruption detection) work per shard. Sharded implements the
// serving engine's PageSource over the global page space.
type Sharded struct {
	shards   []*Store
	pageSize int
	dim      int
	numPages int
}

// BuildSharded packs vectors from the synthesizer into per-shard page
// images per the layout. shards must match the device array's member
// count; shards == 1 produces a single shard byte-identical to Build.
func BuildSharded(lay *layout.Layout, syn *embedding.Synthesizer, pageSize, shards int) (*Sharded, error) {
	if shards < 1 {
		return nil, fmt.Errorf("store: sharded store needs at least 1 shard, got %d", shards)
	}
	dim := syn.Dim()
	slot := embedding.SlotSize(dim)
	if fit := embedding.PageCapacity(pageSize, dim); lay.Capacity > fit {
		return nil, fmt.Errorf("store: layout capacity %d exceeds page fit %d (page %d B, dim %d)",
			lay.Capacity, fit, pageSize, dim)
	}
	numPages := lay.NumPages()
	s := &Sharded{
		shards:   make([]*Store, shards),
		pageSize: pageSize,
		dim:      dim,
		numPages: numPages,
	}
	// Shard i holds ceil((numPages - i) / shards) local pages.
	for i := range s.shards {
		local := (numPages - i + shards - 1) / shards
		if local < 0 {
			local = 0
		}
		s.shards[i] = &Store{
			pageSize: pageSize,
			dim:      dim,
			numPages: local,
			data:     make([]byte, local*pageSize),
		}
	}
	var vec []float32
	for p, keys := range lay.Pages {
		shard, local := p%shards, p/shards
		data := s.shards[shard].data
		base := local * pageSize
		for i, k := range keys {
			off := base + i*slot
			binary.LittleEndian.PutUint32(data[off:], k)
			vec = syn.Vector(k, vec[:0])
			embedding.EncodeVector(vec, data[off+8:off+8])
			sum := slotChecksum(data[off:off+4], data[off+8:off+slot])
			binary.LittleEndian.PutUint32(data[off+4:], sum)
		}
	}
	return s, nil
}

// PageSize returns the page size in bytes.
func (s *Sharded) PageSize() int { return s.pageSize }

// Dim returns the embedding dimension.
func (s *Sharded) Dim() int { return s.dim }

// NumPages returns the number of global pages.
func (s *Sharded) NumPages() int { return s.numPages }

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Shard returns shard i's per-device store, addressed by local pages.
func (s *Sharded) Shard(i int) *Store { return s.shards[i] }

// ReadPage copies global page p's image into dst from its owning shard,
// implementing the serving engine's PageSource.
func (s *Sharded) ReadPage(p layout.PageID, dst []byte) error {
	if int(p) >= s.numPages {
		return fmt.Errorf("store: page %d out of range (%d pages)", p, s.numPages)
	}
	n := layout.PageID(len(s.shards))
	return s.shards[int(p%n)].ReadPage(p/n, dst)
}

// Extract scans global page p for key k with checksum verification,
// routing through the owning shard.
func (s *Sharded) Extract(p layout.PageID, k layout.Key, nSlots int, dst []float32) ([]float32, bool, error) {
	if int(p) >= s.numPages {
		return dst, false, fmt.Errorf("store: page %d out of range (%d pages)", p, s.numPages)
	}
	n := layout.PageID(len(s.shards))
	return s.shards[int(p%n)].Extract(p/n, k, nSlots, dst)
}

// route maps global page p to its owning shard store and local page.
func (s *Sharded) route(p layout.PageID) (*Store, layout.PageID, error) {
	if int(p) >= s.numPages {
		return nil, 0, fmt.Errorf("store: page %d out of range (%d pages)", p, s.numPages)
	}
	n := layout.PageID(len(s.shards))
	return s.shards[int(p%n)], p / n, nil
}

// SlotBytes returns the raw bytes of slot i on global page p; see
// Store.SlotBytes.
func (s *Sharded) SlotBytes(p layout.PageID, i int) ([]byte, error) {
	sh, local, err := s.route(p)
	if err != nil {
		return nil, err
	}
	return sh.SlotBytes(local, i)
}

// PutSlotBytes overwrites slot i of global page p; see Store.PutSlotBytes.
func (s *Sharded) PutSlotBytes(p layout.PageID, i int, src []byte) error {
	sh, local, err := s.route(p)
	if err != nil {
		return err
	}
	return sh.PutSlotBytes(local, i, src)
}

// CorruptSlot injects at-rest bit rot into slot i of global page p; see
// Store.CorruptSlot.
func (s *Sharded) CorruptSlot(p layout.PageID, i int) error {
	sh, local, err := s.route(p)
	if err != nil {
		return err
	}
	return sh.CorruptSlot(local, i)
}

// VerifySlot checks slot i of global page p against its stored checksum;
// see Store.VerifySlot.
func (s *Sharded) VerifySlot(p layout.PageID, i int) (layout.Key, error) {
	sh, local, err := s.route(p)
	if err != nil {
		return 0, err
	}
	return sh.VerifySlot(local, i)
}
