package store

import (
	"bytes"
	"testing"

	"maxembed/internal/embedding"
	"maxembed/internal/layout"
)

func buildTestSharded(t *testing.T, shards int) (*Sharded, *layout.Layout, *embedding.Synthesizer) {
	t.Helper()
	syn, err := embedding.NewSynthesizer(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	lay := layout.Vanilla(100, embedding.PageCapacity(4096, 16))
	if _, err := lay.AddReplicaPage([]layout.Key{0, 50, 99}); err != nil {
		t.Fatal(err)
	}
	s, err := BuildSharded(lay, syn, 4096, shards)
	if err != nil {
		t.Fatal(err)
	}
	return s, lay, syn
}

func TestBuildShardedValidation(t *testing.T) {
	syn, err := embedding.NewSynthesizer(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	lay := layout.Vanilla(10, embedding.PageCapacity(4096, 16))
	if _, err := BuildSharded(lay, syn, 4096, 0); err == nil {
		t.Error("BuildSharded accepted 0 shards")
	}
	// Capacity overflow is rejected like Build.
	tight := layout.Vanilla(10, embedding.PageCapacity(4096, 16))
	tight.Capacity = embedding.PageCapacity(4096, 16) + 1
	if _, err := BuildSharded(tight, syn, 4096, 2); err == nil {
		t.Error("BuildSharded accepted oversized capacity")
	}
}

// TestShardedOneShardMatchesBuild pins the degenerate case: one shard must
// be byte-identical to the flat Build store.
func TestShardedOneShardMatchesBuild(t *testing.T) {
	sh, lay, syn := buildTestSharded(t, 1)
	flat, err := Build(lay, syn, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if sh.NumShards() != 1 {
		t.Fatalf("NumShards = %d", sh.NumShards())
	}
	a, b := make([]byte, 4096), make([]byte, 4096)
	for p := 0; p < lay.NumPages(); p++ {
		if err := sh.ReadPage(layout.PageID(p), a); err != nil {
			t.Fatal(err)
		}
		if err := flat.ReadPage(layout.PageID(p), b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("page %d differs between sharded(1) and flat store", p)
		}
	}
}

// TestShardedPagesMatchFlat checks that every global page of a multi-shard
// store carries exactly the image the flat store would, just striped.
func TestShardedPagesMatchFlat(t *testing.T) {
	for _, shards := range []int{2, 3, 4} {
		sh, lay, syn := buildTestSharded(t, shards)
		flat, err := Build(lay, syn, 4096)
		if err != nil {
			t.Fatal(err)
		}
		a, b := make([]byte, 4096), make([]byte, 4096)
		for p := 0; p < lay.NumPages(); p++ {
			if err := sh.ReadPage(layout.PageID(p), a); err != nil {
				t.Fatalf("shards=%d ReadPage(%d): %v", shards, p, err)
			}
			if err := flat.ReadPage(layout.PageID(p), b); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Fatalf("shards=%d: global page %d differs from flat store", shards, p)
			}
		}
	}
}

func TestShardedDistribution(t *testing.T) {
	sh, lay, _ := buildTestSharded(t, 3)
	total := 0
	for i := 0; i < sh.NumShards(); i++ {
		local := sh.Shard(i).NumPages()
		// Shard i holds ceil((numPages - i) / shards) pages.
		want := (lay.NumPages() - i + 2) / 3
		if local != want {
			t.Errorf("shard %d holds %d pages, want %d", i, local, want)
		}
		total += local
	}
	if total != lay.NumPages() {
		t.Errorf("shards hold %d pages total, want %d", total, lay.NumPages())
	}
}

func TestShardedExtract(t *testing.T) {
	sh, lay, syn := buildTestSharded(t, 4)
	var want, got []float32
	var buf []layout.PageID
	for k := layout.Key(0); int(k) < lay.NumKeys; k++ {
		want = syn.Vector(k, want[:0])
		buf = lay.PagesOf(k, buf[:0])
		for _, p := range buf {
			var ok bool
			var err error
			got, ok, err = sh.Extract(p, k, len(lay.Pages[p]), got[:0])
			if err != nil || !ok {
				t.Fatalf("Extract(page %d, key %d) = ok=%v err=%v", p, k, ok, err)
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("key %d page %d element %d: got %v want %v", k, p, j, got[j], want[j])
				}
			}
		}
	}
}

func TestShardedOutOfRange(t *testing.T) {
	sh, lay, _ := buildTestSharded(t, 2)
	bad := layout.PageID(lay.NumPages())
	if err := sh.ReadPage(bad, make([]byte, 4096)); err == nil {
		t.Error("ReadPage accepted out-of-range page")
	}
	if _, _, err := sh.Extract(bad, 0, 1, nil); err == nil {
		t.Error("Extract accepted out-of-range page")
	}
}
