package store

import (
	"errors"
	"testing"

	"maxembed/internal/embedding"
	"maxembed/internal/layout"
)

// TestSlotVerifyCorruptRepair exercises the scrubber's primitives: a built
// slot verifies, CorruptSlot makes it fail, and PutSlotBytes from a donor
// page holding the same key repairs it.
func TestSlotVerifyCorruptRepair(t *testing.T) {
	s, lay, _ := buildTestStore(t)

	// Every occupied slot of every page verifies on a fresh build.
	for p, keys := range lay.Pages {
		for i, k := range keys {
			got, err := s.VerifySlot(layout.PageID(p), i)
			if err != nil {
				t.Fatalf("VerifySlot(%d, %d): %v", p, i, err)
			}
			if got != k {
				t.Fatalf("VerifySlot(%d, %d) key = %d, want %d", p, i, got, k)
			}
		}
	}

	// Key 50 lives on its home page and on the replica page added by
	// buildTestStore. Corrupt the home copy; verification must catch it.
	k := layout.Key(50)
	var pages []layout.PageID
	pages = lay.PagesOf(k, pages)
	if len(pages) < 2 {
		t.Fatalf("key %d has %d pages, want ≥ 2", k, len(pages))
	}
	home, donor := pages[0], pages[1]
	slotAt := func(p layout.PageID) int {
		for i, kk := range lay.Pages[p] {
			if kk == k {
				return i
			}
		}
		t.Fatalf("key %d not on page %d", k, p)
		return -1
	}
	hi, di := slotAt(home), slotAt(donor)

	if err := s.CorruptSlot(home, hi); err != nil {
		t.Fatal(err)
	}
	if _, err := s.VerifySlot(home, hi); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("VerifySlot after CorruptSlot = %v, want ErrCorrupt", err)
	}
	// The corruption must also be visible through the read path.
	if _, _, err := s.Extract(home, k, len(lay.Pages[home]), nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Extract after CorruptSlot = %v, want ErrCorrupt", err)
	}

	// Repair from the donor page: slot bytes are position-independent.
	src, err := s.SlotBytes(donor, di)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutSlotBytes(home, hi, src); err != nil {
		t.Fatal(err)
	}
	if got, err := s.VerifySlot(home, hi); err != nil || got != k {
		t.Fatalf("VerifySlot after repair = (%d, %v), want (%d, nil)", got, err, k)
	}
}

// TestShardedSlotHelpers checks the global-page routing of the slot
// helpers against a sharded build.
func TestShardedSlotHelpers(t *testing.T) {
	syn, err := embedding.NewSynthesizer(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	lay := layout.Vanilla(100, embedding.PageCapacity(4096, 16))
	s, err := BuildSharded(lay, syn, 4096, 3)
	if err != nil {
		t.Fatal(err)
	}
	for p, keys := range lay.Pages {
		for i, k := range keys {
			got, err := s.VerifySlot(layout.PageID(p), i)
			if err != nil || got != k {
				t.Fatalf("VerifySlot(%d, %d) = (%d, %v), want (%d, nil)", p, i, got, err, k)
			}
		}
	}
	p := layout.PageID(1) // lives on shard 1 of 3
	if err := s.CorruptSlot(p, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.VerifySlot(p, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("VerifySlot after CorruptSlot = %v, want ErrCorrupt", err)
	}
	// Out-of-range pages error rather than panic.
	if _, err := s.SlotBytes(layout.PageID(lay.NumPages()), 0); err == nil {
		t.Fatalf("SlotBytes out of range succeeded")
	}
}
