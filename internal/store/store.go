// Package store materializes an embedding layout into SSD page images.
//
// Each page packs up to d slots of [4-byte key | dim×float32 vector]; the
// remainder of the page is zero. Pages are interpreted through the layout's
// page→keys mapping (the DRAM-resident invert index), as in the paper's
// system; the per-slot key header additionally makes every slot
// self-verifying, which the serving engine uses to detect corruption.
package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"maxembed/internal/embedding"
	"maxembed/internal/layout"
)

// Store holds the page images for one layout.
type Store struct {
	pageSize int
	dim      int
	numPages int
	data     []byte // numPages × pageSize
}

// Build packs vectors from the synthesizer into page images per the layout.
func Build(lay *layout.Layout, syn *embedding.Synthesizer, pageSize int) (*Store, error) {
	dim := syn.Dim()
	slot := embedding.SlotSize(dim)
	if fit := embedding.PageCapacity(pageSize, dim); lay.Capacity > fit {
		return nil, fmt.Errorf("store: layout capacity %d exceeds page fit %d (page %d B, dim %d)",
			lay.Capacity, fit, pageSize, dim)
	}
	s := &Store{
		pageSize: pageSize,
		dim:      dim,
		numPages: lay.NumPages(),
		data:     make([]byte, lay.NumPages()*pageSize),
	}
	var vec []float32
	for p, keys := range lay.Pages {
		base := p * pageSize
		for i, k := range keys {
			off := base + i*slot
			binary.LittleEndian.PutUint32(s.data[off:], k)
			vec = syn.Vector(k, vec[:0])
			embedding.EncodeVector(vec, s.data[off+4:off+4])
		}
	}
	return s, nil
}

// PageSize returns the page size in bytes.
func (s *Store) PageSize() int { return s.pageSize }

// Dim returns the embedding dimension.
func (s *Store) Dim() int { return s.dim }

// NumPages returns the number of pages.
func (s *Store) NumPages() int { return s.numPages }

// Page returns the raw image of page p. The slice aliases internal storage
// and must not be modified.
func (s *Store) Page(p layout.PageID) ([]byte, error) {
	if int(p) >= s.numPages {
		return nil, fmt.Errorf("store: page %d out of range (%d pages)", p, s.numPages)
	}
	return s.data[int(p)*s.pageSize : (int(p)+1)*s.pageSize], nil
}

// Extract scans page p for key k and appends its vector to dst. The
// second result reports whether the key was found in the page's first
// nSlots slots (pass the layout's page population, or -1 to scan the whole
// page).
func (s *Store) Extract(p layout.PageID, k layout.Key, nSlots int, dst []float32) ([]float32, bool, error) {
	img, err := s.Page(p)
	if err != nil {
		return dst, false, err
	}
	slot := embedding.SlotSize(s.dim)
	max := s.pageSize / slot
	if nSlots < 0 || nSlots > max {
		nSlots = max
	}
	for i := 0; i < nSlots; i++ {
		off := i * slot
		if binary.LittleEndian.Uint32(img[off:]) != k {
			continue
		}
		dst, err = embedding.DecodeVector(img[off+4:off+slot], s.dim, dst)
		return dst, err == nil, err
	}
	return dst, false, nil
}

// SlotKey returns the key header of slot i on page p.
func (s *Store) SlotKey(p layout.PageID, i int) (layout.Key, error) {
	img, err := s.Page(p)
	if err != nil {
		return 0, err
	}
	slot := embedding.SlotSize(s.dim)
	if i < 0 || (i+1)*slot > s.pageSize {
		return 0, fmt.Errorf("store: slot %d out of range", i)
	}
	return binary.LittleEndian.Uint32(img[i*slot:]), nil
}

const storeMagic = "MXST1\n"

// ErrBadStore reports a malformed serialized store.
var ErrBadStore = errors.New("store: malformed store stream")

// WriteTo serializes the store (header + raw page images).
func (s *Store) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	m, err := bw.WriteString(storeMagic)
	n += int64(m)
	if err != nil {
		return n, err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(s.pageSize))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(s.dim))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(s.numPages))
	m, err = bw.Write(hdr[:])
	n += int64(m)
	if err != nil {
		return n, err
	}
	m, err = bw.Write(s.data)
	n += int64(m)
	if err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// ReadFrom deserializes a store written by WriteTo.
func ReadFrom(r io.Reader) (*Store, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(storeMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadStore, err)
	}
	if string(magic) != storeMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadStore, magic)
	}
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrBadStore, err)
	}
	s := &Store{
		pageSize: int(binary.LittleEndian.Uint32(hdr[0:])),
		dim:      int(binary.LittleEndian.Uint32(hdr[4:])),
		numPages: int(binary.LittleEndian.Uint32(hdr[8:])),
	}
	if s.pageSize <= 0 || s.dim <= 0 || s.numPages < 0 {
		return nil, fmt.Errorf("%w: implausible header %d/%d/%d", ErrBadStore, s.pageSize, s.dim, s.numPages)
	}
	const maxBytes = 1 << 36
	total := int64(s.pageSize) * int64(s.numPages)
	if total > maxBytes {
		return nil, fmt.Errorf("%w: implausible size %d", ErrBadStore, total)
	}
	// Grow with the data actually present rather than trusting the header
	// (a hostile header must not force a giant allocation): read page by
	// page, appending.
	s.data = make([]byte, 0, min(total, 1<<20))
	page := make([]byte, s.pageSize)
	for p := 0; p < s.numPages; p++ {
		if _, err := io.ReadFull(br, page); err != nil {
			return nil, fmt.Errorf("%w: page %d data: %v", ErrBadStore, p, err)
		}
		s.data = append(s.data, page...)
	}
	return s, nil
}
