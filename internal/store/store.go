// Package store materializes an embedding layout into SSD page images.
//
// Each page packs up to d slots of [4-byte key | 4-byte CRC32C | dim×float32
// vector]; the remainder of the page is zero. Pages are interpreted through
// the layout's page→keys mapping (the DRAM-resident invert index), as in
// the paper's system; the per-slot key header and checksum make every slot
// self-verifying, which the serving engine uses to detect payload
// corruption and recover from an alternate replica page.
package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"maxembed/internal/embedding"
	"maxembed/internal/layout"
)

// ErrCorrupt reports a slot whose stored checksum does not match its
// payload: the page image was damaged between write and read.
var ErrCorrupt = errors.New("store: slot checksum mismatch")

// castagnoli is the CRC32C table; the polynomial NVMe itself uses for
// end-to-end data protection.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// slotChecksum computes the checksum of one slot from its key header and
// vector payload bytes.
func slotChecksum(keyHdr, vec []byte) uint32 {
	return crc32.Update(crc32.Checksum(keyHdr, castagnoli), castagnoli, vec)
}

// ExtractFromImage scans the first nSlots slots of a page image for key k
// and appends its vector to dst. The second result reports whether the key
// was found; a found slot whose checksum does not verify returns an
// ErrCorrupt-wrapped error. Pass nSlots < 0 to scan every slot that fits.
func ExtractFromImage(img []byte, dim int, k layout.Key, nSlots int, dst []float32) ([]float32, bool, error) {
	slot := embedding.SlotSize(dim)
	max := len(img) / slot
	if nSlots < 0 || nSlots > max {
		nSlots = max
	}
	for i := 0; i < nSlots; i++ {
		off := i * slot
		if binary.LittleEndian.Uint32(img[off:]) != k {
			continue
		}
		want := binary.LittleEndian.Uint32(img[off+4:])
		if got := slotChecksum(img[off:off+4], img[off+8:off+slot]); got != want {
			return dst, true, fmt.Errorf("%w: key %d slot %d (stored %08x, computed %08x)",
				ErrCorrupt, k, i, want, got)
		}
		var err error
		dst, err = embedding.DecodeVector(img[off+8:off+slot], dim, dst)
		return dst, err == nil, err
	}
	return dst, false, nil
}

// VerifySlotInImage scans the first nSlots slots of a page image for key k
// and verifies the matching slot's checksum in place, returning the byte
// offset of the slot's vector payload within img (payload length is
// 4×dim). It is ExtractFromImage without the decode: the zero-copy serving
// path verifies here and hands out a view of img instead of copying the
// vector out. found reports whether the key was seen; a found slot that
// fails verification returns an ErrCorrupt-wrapped error. Pass nSlots < 0
// to scan every slot that fits.
func VerifySlotInImage(img []byte, dim int, k layout.Key, nSlots int) (payloadOff int, found bool, err error) {
	slot := embedding.SlotSize(dim)
	max := len(img) / slot
	if nSlots < 0 || nSlots > max {
		nSlots = max
	}
	for i := 0; i < nSlots; i++ {
		off := i * slot
		if binary.LittleEndian.Uint32(img[off:]) != k {
			continue
		}
		want := binary.LittleEndian.Uint32(img[off+4:])
		if got := slotChecksum(img[off:off+4], img[off+8:off+slot]); got != want {
			return 0, true, fmt.Errorf("%w: key %d slot %d (stored %08x, computed %08x)",
				ErrCorrupt, k, i, want, got)
		}
		return off + 8, true, nil
	}
	return 0, false, nil
}

// Store holds the page images for one layout.
type Store struct {
	pageSize int
	dim      int
	numPages int
	data     []byte // numPages × pageSize
}

// Build packs vectors from the synthesizer into page images per the layout.
func Build(lay *layout.Layout, syn *embedding.Synthesizer, pageSize int) (*Store, error) {
	dim := syn.Dim()
	slot := embedding.SlotSize(dim)
	if fit := embedding.PageCapacity(pageSize, dim); lay.Capacity > fit {
		return nil, fmt.Errorf("store: layout capacity %d exceeds page fit %d (page %d B, dim %d)",
			lay.Capacity, fit, pageSize, dim)
	}
	s := &Store{
		pageSize: pageSize,
		dim:      dim,
		numPages: lay.NumPages(),
		data:     make([]byte, lay.NumPages()*pageSize),
	}
	var vec []float32
	for p, keys := range lay.Pages {
		base := p * pageSize
		for i, k := range keys {
			off := base + i*slot
			binary.LittleEndian.PutUint32(s.data[off:], k)
			vec = syn.Vector(k, vec[:0])
			embedding.EncodeVector(vec, s.data[off+8:off+8])
			sum := slotChecksum(s.data[off:off+4], s.data[off+8:off+slot])
			binary.LittleEndian.PutUint32(s.data[off+4:], sum)
		}
	}
	return s, nil
}

// PageSize returns the page size in bytes.
func (s *Store) PageSize() int { return s.pageSize }

// Dim returns the embedding dimension.
func (s *Store) Dim() int { return s.dim }

// NumPages returns the number of pages.
func (s *Store) NumPages() int { return s.numPages }

// Page returns the raw image of page p. The slice aliases internal storage
// and must not be modified.
func (s *Store) Page(p layout.PageID) ([]byte, error) {
	if int(p) >= s.numPages {
		return nil, fmt.Errorf("store: page %d out of range (%d pages)", p, s.numPages)
	}
	return s.data[int(p)*s.pageSize : (int(p)+1)*s.pageSize], nil
}

// Extract scans page p for key k, verifies the slot checksum, and appends
// its vector to dst. The second result reports whether the key was found in
// the page's first nSlots slots (pass the layout's page population, or -1
// to scan the whole page).
func (s *Store) Extract(p layout.PageID, k layout.Key, nSlots int, dst []float32) ([]float32, bool, error) {
	img, err := s.Page(p)
	if err != nil {
		return dst, false, err
	}
	return ExtractFromImage(img, s.dim, k, nSlots, dst)
}

// ReadPage copies page p's image into dst, which must be at least PageSize
// bytes. It is the PageSource payload path the serving engine extracts
// from: the copy stands in for the DMA into a host buffer, so callers may
// mutate dst (e.g. injected corruption) without damaging the store.
func (s *Store) ReadPage(p layout.PageID, dst []byte) error {
	img, err := s.Page(p)
	if err != nil {
		return err
	}
	if len(dst) < s.pageSize {
		return fmt.Errorf("store: buffer of %d bytes, need %d", len(dst), s.pageSize)
	}
	copy(dst[:s.pageSize], img)
	return nil
}

// SlotKey returns the key header of slot i on page p.
func (s *Store) SlotKey(p layout.PageID, i int) (layout.Key, error) {
	img, err := s.Page(p)
	if err != nil {
		return 0, err
	}
	slot := embedding.SlotSize(s.dim)
	if i < 0 || (i+1)*slot > s.pageSize {
		return 0, fmt.Errorf("store: slot %d out of range", i)
	}
	return binary.LittleEndian.Uint32(img[i*slot:]), nil
}

// slotRange bounds slot i of page p, returning its byte range within the
// store's data.
func (s *Store) slotRange(p layout.PageID, i int) (lo, hi int, err error) {
	if int(p) >= s.numPages {
		return 0, 0, fmt.Errorf("store: page %d out of range (%d pages)", p, s.numPages)
	}
	slot := embedding.SlotSize(s.dim)
	if i < 0 || (i+1)*slot > s.pageSize {
		return 0, 0, fmt.Errorf("store: slot %d out of range", i)
	}
	lo = int(p)*s.pageSize + i*slot
	return lo, lo + slot, nil
}

// SlotBytes returns the raw bytes of slot i on page p ([key | crc | vec]).
// The slice aliases internal storage and must not be modified; a slot's
// bytes are position-independent, so they can be installed verbatim at the
// same key's slot on any other page via PutSlotBytes — the scrubber's
// repair primitive.
func (s *Store) SlotBytes(p layout.PageID, i int) ([]byte, error) {
	lo, hi, err := s.slotRange(p, i)
	if err != nil {
		return nil, err
	}
	return s.data[lo:hi], nil
}

// PutSlotBytes overwrites slot i of page p with src, which must be exactly
// one slot long (typically another page's SlotBytes for the same key).
func (s *Store) PutSlotBytes(p layout.PageID, i int, src []byte) error {
	lo, hi, err := s.slotRange(p, i)
	if err != nil {
		return err
	}
	if len(src) != hi-lo {
		return fmt.Errorf("store: slot write of %d bytes, want %d", len(src), hi-lo)
	}
	copy(s.data[lo:hi], src)
	return nil
}

// CorruptSlot flips payload bits of slot i on page p in place — at-rest
// bit rot the next checksum verification will catch. Unlike the serving
// engine's injected read corruption (which damages only the host's copy),
// this damages the image itself, which is what a scrubber must find.
func (s *Store) CorruptSlot(p layout.PageID, i int) error {
	lo, _, err := s.slotRange(p, i)
	if err != nil {
		return err
	}
	s.data[lo+8] ^= 0xA5 // first payload byte, past the key and crc headers
	return nil
}

// VerifySlot recomputes slot i of page p's checksum against its stored
// header, returning the slot's key. Only occupied slots carry a stored
// checksum (Build leaves the rest of the page zero), so callers must
// verify exactly the layout's populated slot range of each page.
func (s *Store) VerifySlot(p layout.PageID, i int) (layout.Key, error) {
	lo, hi, err := s.slotRange(p, i)
	if err != nil {
		return 0, err
	}
	b := s.data[lo:hi]
	k := binary.LittleEndian.Uint32(b)
	want := binary.LittleEndian.Uint32(b[4:])
	if got := slotChecksum(b[:4], b[8:]); got != want {
		return k, fmt.Errorf("%w: key %d page %d slot %d (stored %08x, computed %08x)",
			ErrCorrupt, k, p, i, want, got)
	}
	return k, nil
}

// storeMagic versions the serialized format; MXST2 added the per-slot
// checksum (MXST1 stores cannot be verified and are rejected).
const storeMagic = "MXST2\n"

// ErrBadStore reports a malformed serialized store.
var ErrBadStore = errors.New("store: malformed store stream")

// WriteTo serializes the store (header + raw page images).
func (s *Store) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	m, err := bw.WriteString(storeMagic)
	n += int64(m)
	if err != nil {
		return n, err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(s.pageSize))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(s.dim))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(s.numPages))
	m, err = bw.Write(hdr[:])
	n += int64(m)
	if err != nil {
		return n, err
	}
	m, err = bw.Write(s.data)
	n += int64(m)
	if err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// ReadFrom deserializes a store written by WriteTo.
func ReadFrom(r io.Reader) (*Store, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(storeMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadStore, err)
	}
	if string(magic) != storeMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadStore, magic)
	}
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrBadStore, err)
	}
	s := &Store{
		pageSize: int(binary.LittleEndian.Uint32(hdr[0:])),
		dim:      int(binary.LittleEndian.Uint32(hdr[4:])),
		numPages: int(binary.LittleEndian.Uint32(hdr[8:])),
	}
	if s.pageSize <= 0 || s.dim <= 0 || s.numPages < 0 {
		return nil, fmt.Errorf("%w: implausible header %d/%d/%d", ErrBadStore, s.pageSize, s.dim, s.numPages)
	}
	const maxBytes = 1 << 36
	total := int64(s.pageSize) * int64(s.numPages)
	if total > maxBytes {
		return nil, fmt.Errorf("%w: implausible size %d", ErrBadStore, total)
	}
	// Grow with the data actually present rather than trusting the header
	// (a hostile header must not force a giant allocation): read page by
	// page, appending.
	s.data = make([]byte, 0, min(total, 1<<20))
	page := make([]byte, s.pageSize)
	for p := 0; p < s.numPages; p++ {
		if _, err := io.ReadFull(br, page); err != nil {
			return nil, fmt.Errorf("%w: page %d data: %v", ErrBadStore, p, err)
		}
		s.data = append(s.data, page...)
	}
	return s, nil
}
