package store

import (
	"bytes"
	"testing"

	"maxembed/internal/embedding"
	"maxembed/internal/layout"
)

func buildTestStore(t *testing.T) (*Store, *layout.Layout, *embedding.Synthesizer) {
	t.Helper()
	syn, err := embedding.NewSynthesizer(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	lay := layout.Vanilla(100, embedding.PageCapacity(4096, 16))
	if _, err := lay.AddReplicaPage([]layout.Key{0, 50, 99}); err != nil {
		t.Fatal(err)
	}
	s, err := Build(lay, syn, 4096)
	if err != nil {
		t.Fatal(err)
	}
	return s, lay, syn
}

func TestBuildAndExtract(t *testing.T) {
	s, lay, syn := buildTestStore(t)
	if s.NumPages() != lay.NumPages() {
		t.Fatalf("NumPages = %d, want %d", s.NumPages(), lay.NumPages())
	}
	// Every key must be extractable from every page that lists it, and the
	// vector must match the synthesizer exactly.
	var want, got []float32
	var buf []layout.PageID
	for k := layout.Key(0); int(k) < lay.NumKeys; k++ {
		want = syn.Vector(k, want[:0])
		buf = lay.PagesOf(k, buf[:0])
		for _, p := range buf {
			var ok bool
			var err error
			got, ok, err = s.Extract(p, k, len(lay.Pages[p]), got[:0])
			if err != nil || !ok {
				t.Fatalf("Extract(page %d, key %d) = ok=%v err=%v", p, k, ok, err)
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("key %d page %d element %d: got %v want %v", k, p, j, got[j], want[j])
				}
			}
		}
	}
}

func TestExtractMissingKey(t *testing.T) {
	s, lay, _ := buildTestStore(t)
	// Key 99's home page is the last vanilla page; key 0 is not on it.
	p := lay.Home[99]
	_, ok, err := s.Extract(p, 0, len(lay.Pages[p]), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("Extract found a key not on the page")
	}
}

func TestExtractFullScan(t *testing.T) {
	s, lay, _ := buildTestStore(t)
	// nSlots = -1 scans the whole page including zeroed slots.
	p := lay.Home[0]
	_, ok, err := s.Extract(p, 0, -1, nil)
	if err != nil || !ok {
		t.Fatalf("full scan Extract = ok=%v err=%v", ok, err)
	}
}

func TestSlotKey(t *testing.T) {
	s, lay, _ := buildTestStore(t)
	for i, k := range lay.Pages[0] {
		got, err := s.SlotKey(0, i)
		if err != nil {
			t.Fatal(err)
		}
		if got != k {
			t.Errorf("SlotKey(0,%d) = %d, want %d", i, got, k)
		}
	}
	if _, err := s.SlotKey(0, 10_000); err == nil {
		t.Error("SlotKey accepted out-of-range slot")
	}
}

func TestPageOutOfRange(t *testing.T) {
	s, _, _ := buildTestStore(t)
	if _, err := s.Page(layout.PageID(s.NumPages())); err == nil {
		t.Error("Page accepted out-of-range id")
	}
}

func TestBuildRejectsOversizedCapacity(t *testing.T) {
	syn, _ := embedding.NewSynthesizer(64, 1)
	lay := layout.Vanilla(100, 100) // 100 × 260 B cannot fit a 4 KiB page
	if _, err := Build(lay, syn, 4096); err == nil {
		t.Error("Build accepted layout capacity exceeding page fit")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	s, lay, _ := buildTestStore(t)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if got.PageSize() != s.PageSize() || got.Dim() != s.Dim() || got.NumPages() != s.NumPages() {
		t.Fatalf("header mismatch: %d/%d/%d", got.PageSize(), got.Dim(), got.NumPages())
	}
	for p := 0; p < s.NumPages(); p++ {
		a, _ := s.Page(layout.PageID(p))
		b, _ := got.Page(layout.PageID(p))
		if !bytes.Equal(a, b) {
			t.Fatalf("page %d differs after round trip", p)
		}
	}
	_ = lay
}

func TestReadFromErrors(t *testing.T) {
	if _, err := ReadFrom(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("ReadFrom accepted bad magic")
	}
	s, _, _ := buildTestStore(t)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{3, 10, len(full) - 1} {
		if _, err := ReadFrom(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("ReadFrom accepted truncation at %d", cut)
		}
	}
}
