package store

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"maxembed/internal/embedding"
	"maxembed/internal/layout"
)

// writeStoreWith serializes a store with a chosen geometry — odd page
// sizes exercise the alignment-window math, which only ever sees
// sector-multiple pages in the default configuration.
func writeStoreWith(t *testing.T, pageSize, dim, numKeys int) (string, *Store, *layout.Layout) {
	t.Helper()
	syn, err := embedding.NewSynthesizer(dim, 3)
	if err != nil {
		t.Fatal(err)
	}
	lay := layout.Vanilla(numKeys, embedding.PageCapacity(pageSize, dim))
	s, err := Build(lay, syn, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "store.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, s, lay
}

func TestPageSpanGeometry(t *testing.T) {
	path, mem, _ := writeStoreWith(t, 1032, 4, 50)
	fs, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	for p := 0; p < fs.NumPages(); p++ {
		off, span, pageOff, err := fs.PageSpan(layout.PageID(p))
		if err != nil {
			t.Fatal(err)
		}
		if fs.Direct() {
			if off%int64(directIOAlign) != 0 || span%directIOAlign != 0 {
				t.Fatalf("page %d: unaligned span %d@%d", p, span, off)
			}
		}
		if off+int64(pageOff) != fs.dataOff+int64(p)*int64(mem.PageSize()) {
			t.Fatalf("page %d: span does not land on the page", p)
		}
		if pageOff+fs.PageSize() > span {
			t.Fatalf("page %d: span %d too short for pageOff %d", p, span, pageOff)
		}
	}
	if _, _, _, err := fs.PageSpan(layout.PageID(fs.NumPages())); err == nil {
		t.Error("out-of-range page accepted")
	}
}

// TestReadPageWindowMatches checks the zero-copy window read against the
// in-memory store, on a page size that is NOT a multiple of any sector
// size — the geometry the aligned-window math must absorb.
func TestReadPageWindowMatches(t *testing.T) {
	path, mem, _ := writeStoreWith(t, 1032, 4, 50)
	fs, direct, err := OpenFileAuto(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if direct != fs.Direct() {
		t.Fatal("OpenFileAuto direct flag disagrees with the store")
	}
	buf := fs.NewReadBuf()
	for p := 0; p < fs.NumPages(); p++ {
		img, err := fs.ReadPageWindow(layout.PageID(p), buf)
		if err != nil {
			t.Fatalf("page %d: %v", p, err)
		}
		want, _ := mem.Page(layout.PageID(p))
		if len(img) != len(want) {
			t.Fatalf("page %d: %d bytes, want %d", p, len(img), len(want))
		}
		for i := range want {
			if img[i] != want[i] {
				t.Fatalf("page %d byte %d differs", p, i)
			}
		}
	}
	if _, err := fs.ReadPageWindow(0, buf[:1]); err == nil {
		t.Error("undersized window buffer accepted")
	}
}

// TestReadPageWindowShortAtEOF truncates the file under an open store and
// checks that a short read on the last page surfaces as an unexpected-EOF
// error rather than a silently partial page.
func TestReadPageWindowShortAtEOF(t *testing.T) {
	path, _, _ := writeStoreWith(t, 1032, 4, 50)
	fs, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-7); err != nil {
		t.Fatal(err)
	}
	last := layout.PageID(fs.NumPages() - 1)
	buf := fs.NewReadBuf()
	if _, err := fs.ReadPageWindow(last, buf); !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
		t.Fatalf("short last page: err = %v, want EOF-class", err)
	}
	if err := fs.ReadPage(last, make([]byte, fs.PageSize())); err == nil {
		t.Error("ReadPage of short last page succeeded")
	}
	// Earlier pages are intact and must still read.
	if _, err := fs.ReadPageWindow(0, buf); err != nil {
		t.Fatalf("intact page after truncation: %v", err)
	}
}

func TestCheckSpanRead(t *testing.T) {
	path, _, _ := writeStoreWith(t, 1032, 4, 50)
	fs, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	// Fully covered page with a trailing-EOF short read is fine.
	if err := fs.CheckSpanRead(0, 8, 8+fs.PageSize(), io.EOF); err != nil {
		t.Errorf("covered page rejected: %v", err)
	}
	// One byte short of coverage is not, even without an I/O error.
	if err := fs.CheckSpanRead(0, 8, 8+fs.PageSize()-1, nil); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("uncovered page: err = %v, want ErrUnexpectedEOF", err)
	}
	// A real error is preserved.
	if err := fs.CheckSpanRead(0, 0, 0, io.ErrClosedPipe); !errors.Is(err, io.ErrClosedPipe) {
		t.Errorf("underlying error lost: %v", err)
	}
}

func TestReadPageRefMatchesReadPage(t *testing.T) {
	path, mem, _ := writeStoreWith(t, 4096, 16, 100)
	fs, _, err := OpenFileAuto(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	for p := 0; p < fs.NumPages(); p++ {
		ref, err := fs.ReadPageRef(layout.PageID(p))
		if err != nil {
			t.Fatal(err)
		}
		want, _ := mem.Page(layout.PageID(p))
		img := ref.Bytes()
		if len(img) != len(want) {
			t.Fatalf("page %d: %d bytes, want %d", p, len(img), len(want))
		}
		for i := range want {
			if img[i] != want[i] {
				t.Fatalf("page %d byte %d differs", p, i)
			}
		}
		ref.Release()
		if ref.Bytes() != nil {
			t.Fatal("released ref still holds bytes")
		}
	}
	if _, err := fs.ReadPageRef(layout.PageID(fs.NumPages())); err == nil {
		t.Error("out-of-range page accepted")
	}
}

// TestReadPageRefDoesNotAllocate pins the double-buffering fix: the
// pooled-ref read path must be allocation-free at steady state (the old
// direct path Get/Put a pooled window AND copied into a per-call buffer).
func TestReadPageRefDoesNotAllocate(t *testing.T) {
	path, _, _ := writeStoreWith(t, 4096, 16, 100)
	fs, _, err := OpenFileAuto(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	n := layout.PageID(fs.NumPages())
	var p layout.PageID
	read := func() {
		ref, err := fs.ReadPageRef(p % n)
		if err != nil {
			t.Fatal(err)
		}
		if len(ref.Bytes()) != fs.PageSize() {
			t.Fatal("short page")
		}
		ref.Release()
		p++
	}
	for i := 0; i < 64; i++ {
		read() // warm the buffer and ref pools
	}
	if allocs := testing.AllocsPerRun(200, read); allocs > 0 {
		t.Errorf("ReadPageRef allocates %.1f objects/op, want 0", allocs)
	}
}

func BenchmarkFileStoreReadPageRef(b *testing.B) {
	path, _, _ := benchStoreFile(b)
	fs, _, err := OpenFileAuto(path)
	if err != nil {
		b.Fatal(err)
	}
	defer fs.Close()
	n := layout.PageID(fs.NumPages())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref, err := fs.ReadPageRef(layout.PageID(i) % n)
		if err != nil {
			b.Fatal(err)
		}
		ref.Release()
	}
}

func BenchmarkFileStoreReadPage(b *testing.B) {
	path, _, _ := benchStoreFile(b)
	fs, _, err := OpenFileAuto(path)
	if err != nil {
		b.Fatal(err)
	}
	defer fs.Close()
	n := layout.PageID(fs.NumPages())
	dst := make([]byte, fs.PageSize())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fs.ReadPage(layout.PageID(i)%n, dst); err != nil {
			b.Fatal(err)
		}
	}
}

func benchStoreFile(b *testing.B) (string, *Store, *layout.Layout) {
	b.Helper()
	syn, err := embedding.NewSynthesizer(64, 3)
	if err != nil {
		b.Fatal(err)
	}
	lay := layout.Vanilla(2000, embedding.PageCapacity(4096, 64))
	s, err := Build(lay, syn, 4096)
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "store.bin")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.WriteTo(f); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	return path, s, lay
}
