package tco

import (
	"fmt"
	"math"
)

// Tier-mix costing: the hotness-tiered hierarchy stores different slices
// of the table on different drive classes plus a DRAM layer, so cost is a
// weighted sum rather than one drive price. Comparing mixes at equal
// budget needs a throughput-normalized figure; CostPerKQPS is the monthly
// dollars per thousand queries per second a mix delivers.

// P4510 prices the dense QLC-era capacity class used as the cold tier
// (an 8 TB Intel P4510 at ~$1,200).
var P4510 = DrivePricing{Name: "P4510", DollarsPerGB: 0.15}

// DRAMDollarsPerGB is the amortized server-DRAM capacity cost, on the
// same amortization basis as DrivePricing (DDR4 RDIMM street price).
const DRAMDollarsPerGB = 4.0

// TierShare is one tier's slice of the table: a drive class and the
// fraction of table bytes (including that tier's replicas) stored on it.
type TierShare struct {
	Drive DrivePricing
	// Fraction of StorageGB on this tier, in [0, 1]; fractions of a mix
	// must sum to 1.
	Fraction float64
}

// MixConfig describes one tiered deployment being costed.
type MixConfig struct {
	// TableGB is the base embedding table size in GB.
	TableGB float64
	// ReplicationRatio r inflates SSD capacity to (1+r)·TableGB.
	ReplicationRatio float64
	// Tiers split the SSD capacity across drive classes.
	Tiers []TierShare
	// DRAMGB is the embedding cache plus pin-set size.
	DRAMGB float64
	// QPS is the throughput the mix delivers (measured or simulated).
	QPS float64
	// InstanceMonthlyUSD is the compute cost; zero uses the paper's value,
	// negative excludes compute entirely (hardware-only comparisons, where
	// a shared instance price would wash out the storage differences).
	InstanceMonthlyUSD float64
}

// MixEstimate is the costed outcome of a tier mix.
type MixEstimate struct {
	// StorageGB is SSD capacity including replicas, split by Tiers.
	StorageGB float64
	// StorageUSD, DRAMUSD, TotalUSD are the component and total monthly
	// costs (instance included in TotalUSD).
	StorageUSD, DRAMUSD, TotalUSD float64
	// CostPerKQPS is TotalUSD per 1000 QPS delivered — the figure that
	// compares mixes with different performance at different prices.
	CostPerKQPS float64
}

// Estimate costs the tier mix.
func (c MixConfig) Estimate() (MixEstimate, error) {
	if c.TableGB <= 0 {
		return MixEstimate{}, fmt.Errorf("tco: TableGB must be positive, got %v", c.TableGB)
	}
	if c.ReplicationRatio < 0 {
		return MixEstimate{}, fmt.Errorf("tco: ReplicationRatio must be non-negative, got %v", c.ReplicationRatio)
	}
	if c.DRAMGB < 0 {
		return MixEstimate{}, fmt.Errorf("tco: DRAMGB must be non-negative, got %v", c.DRAMGB)
	}
	if c.QPS <= 0 {
		return MixEstimate{}, fmt.Errorf("tco: QPS must be positive, got %v", c.QPS)
	}
	if len(c.Tiers) == 0 {
		return MixEstimate{}, fmt.Errorf("tco: mix has no tiers")
	}
	sum := 0.0
	for _, t := range c.Tiers {
		if t.Fraction < 0 || t.Fraction > 1 {
			return MixEstimate{}, fmt.Errorf("tco: tier %q fraction %v outside [0, 1]", t.Drive.Name, t.Fraction)
		}
		if t.Fraction > 0 && t.Drive.DollarsPerGB <= 0 {
			return MixEstimate{}, fmt.Errorf("tco: drive %q has no price", t.Drive.Name)
		}
		sum += t.Fraction
	}
	if math.Abs(sum-1) > 1e-9 {
		return MixEstimate{}, fmt.Errorf("tco: tier fractions sum to %v, want 1", sum)
	}
	instance := c.InstanceMonthlyUSD
	if instance == 0 {
		instance = InstanceMonthlyUSD
	} else if instance < 0 {
		instance = 0
	}
	var e MixEstimate
	e.StorageGB = c.TableGB * (1 + c.ReplicationRatio)
	for _, t := range c.Tiers {
		e.StorageUSD += e.StorageGB * t.Fraction * t.Drive.DollarsPerGB
	}
	e.DRAMUSD = c.DRAMGB * DRAMDollarsPerGB
	e.TotalUSD = e.StorageUSD + e.DRAMUSD + instance
	e.CostPerKQPS = e.TotalUSD / (c.QPS / 1000)
	return e, nil
}
