package tco

import (
	"math"
	"testing"
)

func TestMixEstimateComponents(t *testing.T) {
	// 100 GB table, no replicas: 25% on P5800X, 75% on P4510, 4 GB DRAM.
	e, err := MixConfig{
		TableGB: 100,
		Tiers: []TierShare{
			{Drive: P5800X, Fraction: 0.25},
			{Drive: P4510, Fraction: 0.75},
		},
		DRAMGB: 4,
		QPS:    2000,
	}.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	wantStorage := 100*0.25*1.25 + 100*0.75*0.15 // 31.25 + 11.25
	if math.Abs(e.StorageUSD-wantStorage) > 1e-9 {
		t.Errorf("StorageUSD = %v, want %v", e.StorageUSD, wantStorage)
	}
	if math.Abs(e.DRAMUSD-16) > 1e-9 {
		t.Errorf("DRAMUSD = %v, want 16", e.DRAMUSD)
	}
	wantTotal := wantStorage + 16 + InstanceMonthlyUSD
	if math.Abs(e.TotalUSD-wantTotal) > 1e-9 {
		t.Errorf("TotalUSD = %v, want %v", e.TotalUSD, wantTotal)
	}
	if math.Abs(e.CostPerKQPS-wantTotal/2) > 1e-9 {
		t.Errorf("CostPerKQPS = %v, want %v", e.CostPerKQPS, wantTotal/2)
	}
}

func TestMixReplicationInflatesStorage(t *testing.T) {
	mk := func(r float64) MixEstimate {
		e, err := MixConfig{
			TableGB:          200,
			ReplicationRatio: r,
			Tiers:            []TierShare{{Drive: P4510, Fraction: 1}},
			QPS:              1000,
		}.Estimate()
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	plain, repl := mk(0), mk(0.1)
	if math.Abs(repl.StorageGB-220) > 1e-9 || math.Abs(plain.StorageGB-200) > 1e-9 {
		t.Errorf("StorageGB = %v/%v, want 200/220", plain.StorageGB, repl.StorageGB)
	}
	if repl.StorageUSD <= plain.StorageUSD {
		t.Error("replication should cost storage")
	}
}

func TestMixSingleTierMatchesConfig(t *testing.T) {
	// A one-tier mix with no DRAM must agree with the flat Config model.
	flat, err := Config{
		TableGB: CriteoTBTableGB, ReplicationRatio: 0.8,
		RelativePerformance: 1, Drive: P5800X,
	}.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	mix, err := MixConfig{
		TableGB: CriteoTBTableGB, ReplicationRatio: 0.8,
		Tiers: []TierShare{{Drive: P5800X, Fraction: 1}},
		QPS:   1000,
	}.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mix.TotalUSD-flat.TotalUSD) > 1e-9 {
		t.Errorf("mix total %v != flat total %v", mix.TotalUSD, flat.TotalUSD)
	}
	if math.Abs(mix.CostPerKQPS-mix.TotalUSD) > 1e-9 {
		t.Errorf("at 1000 QPS, CostPerKQPS = %v, want TotalUSD %v", mix.CostPerKQPS, mix.TotalUSD)
	}
}

func TestMixNegativeInstanceExcludesCompute(t *testing.T) {
	e, err := MixConfig{
		TableGB:            100,
		Tiers:              []TierShare{{Drive: P4510, Fraction: 1}},
		QPS:                1000,
		InstanceMonthlyUSD: -1,
	}.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.TotalUSD-15) > 1e-9 { // storage only: 100 × $0.15
		t.Errorf("hardware-only total = %v, want 15", e.TotalUSD)
	}
}

func TestMixTieredCheaperThanAllFast(t *testing.T) {
	mk := func(tiers []TierShare) MixEstimate {
		e, err := MixConfig{TableGB: CriteoTBTableGB, Tiers: tiers, QPS: 1000}.Estimate()
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	tiered := mk([]TierShare{{Drive: P5800X, Fraction: 0.25}, {Drive: P4510, Fraction: 0.75}})
	allFast := mk([]TierShare{{Drive: P5800X, Fraction: 1}})
	allDense := mk([]TierShare{{Drive: P4510, Fraction: 1}})
	if !(allDense.StorageUSD < tiered.StorageUSD && tiered.StorageUSD < allFast.StorageUSD) {
		t.Errorf("storage ordering broken: dense %v, tiered %v, fast %v",
			allDense.StorageUSD, tiered.StorageUSD, allFast.StorageUSD)
	}
}

func TestMixValidation(t *testing.T) {
	good := MixConfig{
		TableGB: 100,
		Tiers:   []TierShare{{Drive: P5800X, Fraction: 0.5}, {Drive: P4510, Fraction: 0.5}},
		QPS:     1,
	}
	if _, err := good.Estimate(); err != nil {
		t.Fatalf("valid mix rejected: %v", err)
	}
	bad := []MixConfig{
		{TableGB: 0, Tiers: good.Tiers, QPS: 1},
		{TableGB: 100, ReplicationRatio: -1, Tiers: good.Tiers, QPS: 1},
		{TableGB: 100, Tiers: good.Tiers, QPS: 0},
		{TableGB: 100, Tiers: good.Tiers, DRAMGB: -1, QPS: 1},
		{TableGB: 100, Tiers: nil, QPS: 1},
		{TableGB: 100, Tiers: []TierShare{{Drive: P5800X, Fraction: 0.7}}, QPS: 1},
		{TableGB: 100, Tiers: []TierShare{{Drive: P5800X, Fraction: 1.5}, {Drive: P4510, Fraction: -0.5}}, QPS: 1},
		{TableGB: 100, Tiers: []TierShare{{Drive: DrivePricing{Name: "free"}, Fraction: 1}}, QPS: 1},
	}
	for i, c := range bad {
		if _, err := c.Estimate(); err == nil {
			t.Errorf("case %d: invalid mix accepted", i)
		}
	}
}
