// Package tco reproduces the paper's total-cost-of-ownership estimate
// (§7.3, Table 2): the monthly cost of a serving instance plus SSD capacity
// for the embedding table, with and without MaxEmbed's replication space,
// against the throughput each configuration delivers.
package tco

import "fmt"

// DrivePricing describes one SSD model's cost structure.
type DrivePricing struct {
	// Name labels the drive.
	Name string
	// DollarsPerGB is the amortized capacity cost.
	DollarsPerGB float64
}

// The paper's reference prices (§7.3): an 800 GB Intel P5800X at ~$1,000
// and a 1.6 TB Samsung PM1735 at ~$500.
var (
	P5800X = DrivePricing{Name: "P5800X", DollarsPerGB: 1.25}
	PM1735 = DrivePricing{Name: "PM1735", DollarsPerGB: 0.3125}
)

// InstanceMonthlyUSD is the paper's c6g.16xlarge monthly price.
const InstanceMonthlyUSD = 1588.0

// CriteoTBTableGB is the paper's CriteoTB embedding table size estimate.
const CriteoTBTableGB = 225.0

// Config describes one deployment being costed.
type Config struct {
	// TableGB is the base embedding table size in GB.
	TableGB float64
	// ReplicationRatio r inflates SSD capacity to (1+r)·TableGB.
	ReplicationRatio float64
	// RelativePerformance is throughput normalized to the baseline
	// (1.0 = SHP baseline; the paper uses 1.16 for r=80%).
	RelativePerformance float64
	// Drive prices the SSD capacity.
	Drive DrivePricing
	// InstanceMonthlyUSD is the compute cost; zero uses the paper's value.
	InstanceMonthlyUSD float64
}

// Estimate is the costed outcome.
type Estimate struct {
	// StorageGB is SSD capacity including replicas.
	StorageGB float64
	// StorageUSD and TotalUSD are the drive and drive+instance costs.
	StorageUSD, TotalUSD float64
	// Performance is the relative throughput (baseline = 1.0).
	Performance float64
	// PerfPerDollar is Performance normalized by TotalUSD relative to a
	// zero-replication baseline of the same drive — Table 2's bottom rows.
	PerfPerDollar float64
}

// Estimate costs the configuration.
func (c Config) Estimate() (Estimate, error) {
	if c.TableGB <= 0 {
		return Estimate{}, fmt.Errorf("tco: TableGB must be positive, got %v", c.TableGB)
	}
	if c.ReplicationRatio < 0 {
		return Estimate{}, fmt.Errorf("tco: ReplicationRatio must be non-negative, got %v", c.ReplicationRatio)
	}
	if c.RelativePerformance <= 0 {
		return Estimate{}, fmt.Errorf("tco: RelativePerformance must be positive, got %v", c.RelativePerformance)
	}
	if c.Drive.DollarsPerGB <= 0 {
		return Estimate{}, fmt.Errorf("tco: drive %q has no price", c.Drive.Name)
	}
	instance := c.InstanceMonthlyUSD
	if instance == 0 {
		instance = InstanceMonthlyUSD
	}
	var e Estimate
	e.StorageGB = c.TableGB * (1 + c.ReplicationRatio)
	e.StorageUSD = e.StorageGB * c.Drive.DollarsPerGB
	e.TotalUSD = e.StorageUSD + instance
	e.Performance = c.RelativePerformance

	baseTotal := c.TableGB*c.Drive.DollarsPerGB + instance
	// perf/$ relative to the baseline's perf/$ (baseline perf = 1).
	e.PerfPerDollar = (e.Performance / e.TotalUSD) / (1.0 / baseTotal)
	return e, nil
}
