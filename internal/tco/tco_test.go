package tco

import (
	"math"
	"testing"
)

func TestPaperTable2P5800X(t *testing.T) {
	// Baseline: 225 GB on P5800X + instance.
	base, err := Config{
		TableGB:             CriteoTBTableGB,
		ReplicationRatio:    0,
		RelativePerformance: 1,
		Drive:               P5800X,
	}.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: $1,869.25 total for the baseline.
	if math.Abs(base.TotalUSD-1869.25) > 0.01 {
		t.Errorf("baseline total = %v, want 1869.25", base.TotalUSD)
	}
	me, err := Config{
		TableGB:             CriteoTBTableGB,
		ReplicationRatio:    0.8,
		RelativePerformance: 1.16,
		Drive:               P5800X,
	}.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: $2,088.00 for MaxEmbed r=80% (225·1.8·1.25 + 1588 = 2094.25;
	// the paper rounds the capacity to 400 GB — accept either to ±10).
	if math.Abs(me.TotalUSD-2088.0) > 10 {
		t.Errorf("MaxEmbed total = %v, want ≈2088", me.TotalUSD)
	}
	// Paper: perf/cost ≈ 1.04× for P5800X.
	if math.Abs(me.PerfPerDollar-1.04) > 0.01 {
		t.Errorf("perf/$ = %v, want ≈1.04", me.PerfPerDollar)
	}
}

func TestPaperTable2PM1735(t *testing.T) {
	base, err := Config{
		TableGB:             CriteoTBTableGB,
		ReplicationRatio:    0,
		RelativePerformance: 1,
		Drive:               PM1735,
	}.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: $1,658.31.
	if math.Abs(base.TotalUSD-1658.31) > 0.01 {
		t.Errorf("baseline total = %v, want 1658.31", base.TotalUSD)
	}
	me, err := Config{
		TableGB:             CriteoTBTableGB,
		ReplicationRatio:    0.8,
		RelativePerformance: 1.16,
		Drive:               PM1735,
	}.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: $1,713.00 (same 400 GB rounding; accept ±10).
	if math.Abs(me.TotalUSD-1713.0) > 10 {
		t.Errorf("MaxEmbed total = %v, want ≈1713", me.TotalUSD)
	}
	// Paper: perf/cost ≈ 1.12× for PM1735.
	if math.Abs(me.PerfPerDollar-1.12) > 0.01 {
		t.Errorf("perf/$ = %v, want ≈1.12", me.PerfPerDollar)
	}
}

func TestEstimateValidation(t *testing.T) {
	good := Config{TableGB: 100, RelativePerformance: 1, Drive: P5800X}
	if _, err := good.Estimate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{TableGB: 0, RelativePerformance: 1, Drive: P5800X},
		{TableGB: 100, ReplicationRatio: -1, RelativePerformance: 1, Drive: P5800X},
		{TableGB: 100, RelativePerformance: 0, Drive: P5800X},
		{TableGB: 100, RelativePerformance: 1, Drive: DrivePricing{Name: "free"}},
	}
	for i, c := range bad {
		if _, err := c.Estimate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestCheaperDriveBetterPerfPerDollar(t *testing.T) {
	mk := func(d DrivePricing) Estimate {
		e, err := Config{
			TableGB: CriteoTBTableGB, ReplicationRatio: 0.8,
			RelativePerformance: 1.16, Drive: d,
		}.Estimate()
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	if mk(PM1735).PerfPerDollar <= mk(P5800X).PerfPerDollar {
		t.Error("cheaper drive should give better perf/$ for the same gain")
	}
}
