package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecode asserts the binary trace decoder never panics and never
// returns an invalid trace for arbitrary input.
func FuzzDecode(f *testing.F) {
	tr := &Trace{NumItems: 5, Queries: [][]Key{{1, 2}, {4}}}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("MXTR1\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, q := range got.Queries {
			for _, k := range q {
				if int(k) >= got.NumItems {
					t.Fatalf("decoded out-of-range key %d (items %d)", k, got.NumItems)
				}
			}
		}
	})
}

// FuzzDecodeText asserts the text decoder never panics and respects the
// enforced key range.
func FuzzDecodeText(f *testing.F) {
	f.Add("1 2 3\n7 8\n", 0)
	f.Add("# c\n\n5", 10)
	f.Add("999999999999999999999", 0)
	f.Fuzz(func(t *testing.T, data string, numItems int) {
		if numItems < 0 || numItems > 1<<20 {
			numItems = 0
		}
		got, err := DecodeText(strings.NewReader(data), numItems)
		if err != nil {
			return
		}
		for _, q := range got.Queries {
			for _, k := range q {
				if int(k) >= got.NumItems {
					t.Fatalf("key %d >= items %d", k, got.NumItems)
				}
			}
		}
	})
}
