package workload

import (
	"math"
	"math/rand"
)

// Generate synthesizes a trace for the profile using its default seed.
func Generate(p Profile) (*Trace, error) {
	return GenerateSeeded(p, p.Seed)
}

// GenerateSeeded synthesizes a trace for the profile with an explicit seed.
// Generation is deterministic for a given (profile, seed) pair.
//
// Model. Items are assigned round-robin to latent communities. A pool of
// query templates is synthesized first: each template draws its keys from a
// band of communities around a primary one (geometric spread), modelling a
// recurring context — a user, a session, an outfit, an ad slot. Each query
// then instantiates a template: it samples a Zipf-popular template and
// draws most of its keys uniformly from that template's key set
// (CommunityAffinity), mixing in globally popular keys (small feature
// columns) for the rest.
//
// This reproduces the two structural properties the paper's analysis rests
// on (§3): key combinations *recur* across queries — which is what makes
// both partitioning and replication learnable — and a template's key set
// exceeds one SSD page, so single-copy placement must split it; the
// recurring remainder is exactly what replica pages recover. Shopping
// profiles get high affinity and concentrated template popularity;
// advertising profiles flatter ones (PopularityOffset), matching the
// paper's observation that CriteoTB is nearly cache-insensitive (Fig 12).
func GenerateSeeded(p Profile, seed int64) (*Trace, error) {
	t, _, err := generate(p, seed)
	return t, err
}

// generate also returns the item→community map (in final id space) so
// white-box tests can verify the co-occurrence structure. Item ids are
// scrambled by a seeded permutation: real datasets do not assign ids in
// popularity order, so neither does the generator — without this, the
// vanilla sequential placement would accidentally co-locate the hottest
// items and look far better than it does on real traces.
func generate(p Profile, seed int64) (*Trace, []int32, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(seed))

	numComm := p.Communities
	if numComm > p.Items {
		numComm = p.Items
	}
	idOf := rng.Perm(p.Items) // rank space → id space
	community := make([]int32, p.Items)
	for rank, id := range idOf {
		community[id] = int32(rank % numComm)
	}
	// Community c holds ranks {c, c+numComm, c+2*numComm, ...}.
	commSize := func(c int) int {
		n := p.Items / numComm
		if c < p.Items%numComm {
			n++
		}
		return n
	}

	// Global pulls model small-cardinality feature columns: a modest hot
	// head, flattened by the Zipf v-offset so no single key appears in
	// nearly every query (real hashed columns spread their head). The
	// pool spans only the head tenth of the rank space — small columns
	// are small; the long tail belongs to the big, community-structured
	// columns.
	globalMax := p.Items/10 - 1
	if globalMax < 1 {
		globalMax = 1
	}
	globalZipf := rand.NewZipf(rng, 1.5, 500, uint64(globalMax))

	// Template pool. Each template's size exceeds the mean query length so
	// repeated instantiations overlap heavily, and its keys span a band of
	// communities so the recurring set exceeds one SSD page.
	numTemplates := p.Queries / 12
	if numTemplates < 1 {
		numTemplates = 1
	}
	templates := make([][]int, numTemplates)
	meanTemplate := p.TemplateLen
	if meanTemplate == 0 {
		meanTemplate = 1.25*p.MeanQueryLen + 2
	}
	for ti := range templates {
		primary := rng.Intn(numComm)
		size := 2 + poisson(rng, meanTemplate-2)
		keys := make([]int, 0, size)
		for j := 0; j < size; j++ {
			offset := 0
			for rng.Float64() < p.CommunitySpread {
				offset++
			}
			if rng.Intn(2) == 0 {
				offset = -offset
			}
			comm := ((primary+offset)%numComm + numComm) % numComm
			sz := commSize(comm)
			local := 0
			if sz > 1 {
				local = rng.Intn(sz)
			}
			keys = append(keys, comm+local*numComm)
		}
		templates[ti] = keys
	}
	// Template popularity: Zipf with a per-profile flattening offset.
	tmplV := float64(numTemplates) * p.PopularityOffset
	if tmplV < 2 {
		tmplV = 2
	}
	tmplZipf := rand.NewZipf(rng, p.ZipfS, tmplV, uint64(numTemplates-1))

	t := &Trace{
		NumItems: p.Items,
		Queries:  make([][]Key, 0, p.Queries),
	}
	meanExtra := p.MeanQueryLen - 1
	for i := 0; i < p.Queries; i++ {
		qlen := 1 + poisson(rng, meanExtra)
		q := make([]Key, 0, qlen)
		tmpl := templates[tmplZipf.Uint64()]
		for j := 0; j < qlen; j++ {
			var rank int
			if rng.Float64() < p.CommunityAffinity {
				rank = tmpl[rng.Intn(len(tmpl))]
			} else {
				rank = int(globalZipf.Uint64())
			}
			q = append(q, Key(idOf[rank]))
		}
		t.Queries = append(t.Queries, q)
	}
	return t, community, nil
}

// poisson draws from a Poisson distribution with the given mean using
// Knuth's multiplication method. Means used here are bounded by the
// longest profile query length (~80), within float64 range.
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	limit := math.Exp(-mean)
	k := 0
	prod := rng.Float64()
	for prod > limit {
		k++
		prod *= rng.Float64()
	}
	return k
}
