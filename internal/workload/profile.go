package workload

import "fmt"

// Profile describes one dataset from the paper's Table 3, together with the
// generator parameters used to synthesize a structurally similar trace at a
// reduced scale. PaperItems/PaperQueries/PaperQueryLen record the original
// numbers for reporting; Items/Queries/MeanQueryLen are the scaled defaults
// actually generated.
type Profile struct {
	// Name is the dataset name as the paper reports it.
	Name string

	// Paper-reported numbers (Table 3).
	PaperItems    int64
	PaperQueries  int64
	PaperQueryLen float64

	// Scaled generation parameters.
	Items        int     // key-space size
	Queries      int     // number of queries to generate
	MeanQueryLen float64 // mean keys per query

	// Community structure. Items are spread over Communities latent
	// groups; each query draws CommunityAffinity of its keys from a band
	// of groups around one sampled primary group and the rest from the
	// global popularity distribution. Shopping datasets have high
	// affinity (strong co-appearance), advertising datasets low.
	Communities       int
	CommunityAffinity float64
	// CommunitySpread is the geometric continue-probability of drawing a
	// key from a group adjacent to the primary one (0 keeps every
	// community pull inside the primary group). Spread makes an item's
	// natural co-appearing set span several SSD pages — the property the
	// paper identifies as the reason single-copy placement saturates (§3:
	// hot embeddings co-appear with more than one page can hold).
	CommunitySpread float64

	// ZipfS is the popularity skew exponent (>1 for math/rand Zipf).
	ZipfS float64
	// TemplateLen is the mean size of a recurring key set (see
	// generate's doc comment). Zero derives it from MeanQueryLen; set it
	// explicitly for datasets whose recurring co-sets are much larger
	// than a single query, such as Amazon M2's co-purchase sessions
	// sampled a few items at a time.
	TemplateLen float64
	// PopularityOffset is the Zipf v-offset of the community draw as a
	// fraction of Communities. Larger values flatten popularity — the
	// CriteoTB regime, whose 882M items average only ~5 accesses each and
	// whose throughput the paper shows is nearly cache-insensitive
	// (Fig 12) — while smaller values concentrate it, as in shopping
	// catalogs with hot categories.
	PopularityOffset float64

	// Seed is the default deterministic generator seed for this profile.
	Seed int64
}

// Validate reports an error for out-of-range profile parameters.
func (p Profile) Validate() error {
	switch {
	case p.Items <= 0:
		return fmt.Errorf("workload: profile %q: Items must be positive, got %d", p.Name, p.Items)
	case p.Queries < 0:
		return fmt.Errorf("workload: profile %q: Queries must be non-negative, got %d", p.Name, p.Queries)
	case p.MeanQueryLen < 1:
		return fmt.Errorf("workload: profile %q: MeanQueryLen must be >= 1, got %v", p.Name, p.MeanQueryLen)
	case p.Communities <= 0:
		return fmt.Errorf("workload: profile %q: Communities must be positive, got %d", p.Name, p.Communities)
	case p.CommunityAffinity < 0 || p.CommunityAffinity > 1:
		return fmt.Errorf("workload: profile %q: CommunityAffinity must be in [0,1], got %v", p.Name, p.CommunityAffinity)
	case p.CommunitySpread < 0 || p.CommunitySpread >= 1:
		return fmt.Errorf("workload: profile %q: CommunitySpread must be in [0,1), got %v", p.Name, p.CommunitySpread)
	case p.ZipfS <= 1:
		return fmt.Errorf("workload: profile %q: ZipfS must be > 1, got %v", p.Name, p.ZipfS)
	case p.TemplateLen < 0:
		return fmt.Errorf("workload: profile %q: TemplateLen must be non-negative, got %v", p.Name, p.TemplateLen)
	case p.PopularityOffset < 0:
		return fmt.Errorf("workload: profile %q: PopularityOffset must be non-negative, got %v", p.Name, p.PopularityOffset)
	}
	return nil
}

// Scaled returns a copy of the profile with Items, Queries and Communities
// multiplied by factor (minimum 1 each). Used by unit tests and
// `go test -bench` to shrink experiments.
func (p Profile) Scaled(factor float64) Profile {
	scale := func(n int) int {
		s := int(float64(n) * factor)
		if s < 1 {
			s = 1
		}
		return s
	}
	p.Items = scale(p.Items)
	p.Queries = scale(p.Queries)
	p.Communities = scale(p.Communities)
	return p
}

// The five dataset profiles from Table 3. Scaled item/query counts keep the
// relative ordering of the real datasets while remaining tractable for a
// single-machine simulation; the scale factor per profile is recorded in
// DESIGN.md §2. Shopping datasets (Amazon M2, Alibaba-iFashion) get strong
// community affinity; advertising datasets (Avazu, Criteo, CriteoTB) weak.
var (
	AmazonM2 = Profile{
		Name:              "Amazon M2",
		PaperItems:        1_390_000,
		PaperQueries:      3_600_000,
		PaperQueryLen:     5.24,
		Items:             70_000,
		Queries:           120_000,
		MeanQueryLen:      5.24,
		TemplateLen:       22,
		Communities:       7_000,
		CommunityAffinity: 0.88,
		ZipfS:             1.45,
		CommunitySpread:   0.50,
		PopularityOffset:  0.02,
		Seed:              101,
	}

	AlibabaIFashion = Profile{
		Name:              "Alibaba iFashion",
		PaperItems:        4_460_000,
		PaperQueries:      999_000,
		PaperQueryLen:     53.63,
		Items:             110_000,
		Queries:           40_000,
		MeanQueryLen:      53.63,
		Communities:       7_300,
		CommunityAffinity: 0.85,
		ZipfS:             1.40,
		CommunitySpread:   0.50,
		PopularityOffset:  0.02,
		Seed:              102,
	}

	Avazu = Profile{
		Name:              "Avazu",
		PaperItems:        9_450_000,
		PaperQueries:      40_400_000,
		PaperQueryLen:     21,
		Items:             120_000,
		Queries:           150_000,
		MeanQueryLen:      21,
		Communities:       10_000,
		CommunityAffinity: 0.70,
		ZipfS:             1.40,
		CommunitySpread:   0.50,
		PopularityOffset:  0.06,
		Seed:              103,
	}

	Criteo = Profile{
		Name:              "Criteo",
		PaperItems:        35_000_000,
		PaperQueries:      45_800_000,
		PaperQueryLen:     26,
		Items:             160_000,
		Queries:           160_000,
		MeanQueryLen:      26,
		Communities:       11_500,
		CommunityAffinity: 0.68,
		ZipfS:             1.35,
		CommunitySpread:   0.50,
		PopularityOffset:  0.06,
		Seed:              104,
	}

	CriteoTB = Profile{
		Name:              "CriteoTB",
		PaperItems:        882_000_000,
		PaperQueries:      4_370_000_000,
		PaperQueryLen:     26,
		Items:             220_000,
		Queries:           200_000,
		MeanQueryLen:      26,
		Communities:       18_000,
		CommunityAffinity: 0.85,
		ZipfS:             1.30,
		CommunitySpread:   0.50,
		PopularityOffset:  0.30,
		Seed:              105,
	}
)

// Profiles lists the five paper datasets in the order the paper's figures
// present them.
func Profiles() []Profile {
	return []Profile{AlibabaIFashion, AmazonM2, Avazu, Criteo, CriteoTB}
}

// ProfileByName returns the profile with the given name (case-sensitive)
// or false if none matches.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
