package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// EncodeText writes the trace as plain text: one query per line,
// space-separated decimal keys. The format interoperates with the
// preprocessed query logs used by embedding-placement research artifacts
// (one lookup request per line).
func (t *Trace) EncodeText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, q := range t.Queries {
		for i, k := range q {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatUint(uint64(k), 10)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeText parses a text trace (one query per line, space-separated
// keys; empty lines and lines starting with '#' are skipped). numItems of
// zero infers the key space as maxKey+1; a positive value enforces it.
func DecodeText(r io.Reader, numItems int) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	t := &Trace{NumItems: numItems}
	maxKey := int64(-1)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 || text[0] == '#' {
			continue
		}
		var q []Key
		start := -1
		flush := func(end int) error {
			if start < 0 {
				return nil
			}
			v, err := strconv.ParseUint(string(text[start:end]), 10, 32)
			if err != nil {
				return fmt.Errorf("workload: line %d: %v", line, err)
			}
			if numItems > 0 && v >= uint64(numItems) {
				return fmt.Errorf("workload: line %d: key %d >= num items %d", line, v, numItems)
			}
			if int64(v) > maxKey {
				maxKey = int64(v)
			}
			q = append(q, Key(v))
			start = -1
			return nil
		}
		for i, c := range text {
			switch {
			case c == ' ' || c == '\t':
				if err := flush(i); err != nil {
					return nil, err
				}
			case c >= '0' && c <= '9':
				if start < 0 {
					start = i
				}
			default:
				return nil, fmt.Errorf("workload: line %d: unexpected byte %q", line, c)
			}
		}
		if err := flush(len(text)); err != nil {
			return nil, err
		}
		if len(q) > 0 {
			t.Queries = append(t.Queries, q)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading text trace: %w", err)
	}
	if numItems == 0 {
		t.NumItems = int(maxKey + 1)
	}
	return t, nil
}
