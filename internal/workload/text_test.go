package workload

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestTextRoundTrip(t *testing.T) {
	tr, err := Generate(testProfile().Scaled(0.1))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.EncodeText(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeText(&buf, tr.NumItems)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr.Queries, got.Queries) {
		t.Error("text round trip changed queries")
	}
	if got.NumItems != tr.NumItems {
		t.Errorf("NumItems = %d, want %d", got.NumItems, tr.NumItems)
	}
}

func TestDecodeTextFeatures(t *testing.T) {
	in := "# a comment\n1 2 3\n\n7\t8\n# trailing comment\n"
	tr, err := DecodeText(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]Key{{1, 2, 3}, {7, 8}}
	if !reflect.DeepEqual(tr.Queries, want) {
		t.Errorf("Queries = %v, want %v", tr.Queries, want)
	}
	// NumItems inferred as maxKey+1.
	if tr.NumItems != 9 {
		t.Errorf("NumItems = %d, want 9", tr.NumItems)
	}
}

func TestDecodeTextErrors(t *testing.T) {
	cases := []struct {
		in       string
		numItems int
	}{
		{"1 2 x", 0},          // non-numeric
		{"1, 2", 0},           // punctuation
		{"5", 3},              // key out of enforced range
		{"99999999999999", 0}, // overflow uint32
	}
	for i, c := range cases {
		if _, err := DecodeText(strings.NewReader(c.in), c.numItems); err == nil {
			t.Errorf("case %d (%q): error expected", i, c.in)
		}
	}
}

func TestDecodeTextEmpty(t *testing.T) {
	tr, err := DecodeText(strings.NewReader(""), 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumQueries() != 0 || tr.NumItems != 0 {
		t.Errorf("empty input: %d queries, %d items", tr.NumQueries(), tr.NumItems)
	}
}
