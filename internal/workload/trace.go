// Package workload generates and encodes embedding-lookup query traces.
//
// The real datasets used by the paper (Amazon M2, Alibaba-iFashion, Avazu,
// Criteo, CriteoTB — Table 3) cannot be redistributed or downloaded here, so
// this package synthesizes traces with the structural properties the paper's
// analysis relies on: Zipf-skewed item popularity, per-dataset query-length
// distributions, and latent community structure that makes items co-appear
// with far more neighbours than one SSD page can hold. Shopping-style
// profiles get strong communities; advertising-style profiles get weak ones,
// reproducing the paper's observation that gains are larger on shopping
// datasets.
package workload

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Key identifies an embedding item. Keys are dense: 0..NumItems-1.
type Key = uint32

// Trace is a sequence of embedding lookup queries over a dense key space.
type Trace struct {
	// NumItems is the size of the key space; every query key is < NumItems.
	NumItems int
	// Queries holds one key slice per query. Keys may repeat within a
	// query (real logs contain duplicates); consumers dedupe as needed.
	Queries [][]Key
}

// NumQueries returns the number of queries in the trace.
func (t *Trace) NumQueries() int { return len(t.Queries) }

// MeanQueryLen returns the average query length (with duplicates), or 0
// for an empty trace.
func (t *Trace) MeanQueryLen() float64 {
	if len(t.Queries) == 0 {
		return 0
	}
	total := 0
	for _, q := range t.Queries {
		total += len(q)
	}
	return float64(total) / float64(len(t.Queries))
}

// Split divides the trace into a history portion (the first frac of
// queries, used to build the hypergraph) and an evaluation portion (the
// remainder, used for online serving). frac is clamped to [0, 1]. Both
// returned traces share backing storage with t.
func (t *Trace) Split(frac float64) (history, eval *Trace) {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(float64(len(t.Queries)) * frac)
	history = &Trace{NumItems: t.NumItems, Queries: t.Queries[:n]}
	eval = &Trace{NumItems: t.NumItems, Queries: t.Queries[n:]}
	return history, eval
}

// Frequencies returns per-key access counts over all queries.
func (t *Trace) Frequencies() []int {
	freq := make([]int, t.NumItems)
	for _, q := range t.Queries {
		for _, k := range q {
			freq[k]++
		}
	}
	return freq
}

const traceMagic = "MXTR1\n"

// Encode writes the trace in a compact binary format (magic header, then
// varint-encoded counts and delta-coded keys per query).
func (t *Trace) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := writeUvarint(uint64(t.NumItems)); err != nil {
		return err
	}
	if err := writeUvarint(uint64(len(t.Queries))); err != nil {
		return err
	}
	for _, q := range t.Queries {
		if err := writeUvarint(uint64(len(q))); err != nil {
			return err
		}
		for _, k := range q {
			if err := writeUvarint(uint64(k)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ErrBadTrace reports a malformed trace stream.
var ErrBadTrace = errors.New("workload: malformed trace")

// Decode reads a trace previously written by Encode.
func Decode(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTrace, magic)
	}
	numItems, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: num items: %v", ErrBadTrace, err)
	}
	numQueries, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: num queries: %v", ErrBadTrace, err)
	}
	const maxReasonable = 1 << 32
	if numItems > maxReasonable || numQueries > maxReasonable {
		return nil, fmt.Errorf("%w: implausible sizes %d/%d", ErrBadTrace, numItems, numQueries)
	}
	// Allocations grow with the data actually present, never with header
	// claims alone: a hostile header cannot force a large up-front
	// allocation (found by FuzzDecode).
	const maxPrealloc = 1 << 16
	t := &Trace{
		NumItems: int(numItems),
		Queries:  make([][]Key, 0, min(numQueries, maxPrealloc)),
	}
	for i := uint64(0); i < numQueries; i++ {
		qlen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: query %d length: %v", ErrBadTrace, i, err)
		}
		if qlen > maxReasonable {
			return nil, fmt.Errorf("%w: implausible query length %d", ErrBadTrace, qlen)
		}
		q := make([]Key, 0, min(qlen, maxPrealloc))
		for j := uint64(0); j < qlen; j++ {
			k, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("%w: query %d key %d: %v", ErrBadTrace, i, j, err)
			}
			if k >= numItems {
				return nil, fmt.Errorf("%w: key %d >= num items %d", ErrBadTrace, k, numItems)
			}
			q = append(q, Key(k))
		}
		t.Queries = append(t.Queries, q)
	}
	return t, nil
}
