package workload

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func testProfile() Profile {
	return Profile{
		Name:              "test",
		Items:             2_000,
		Queries:           3_000,
		MeanQueryLen:      8,
		Communities:       50,
		CommunityAffinity: 0.8,
		ZipfS:             1.2,
		Seed:              1,
	}
}

func TestGenerateValidity(t *testing.T) {
	tr, err := Generate(testProfile())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if tr.NumItems != 2_000 {
		t.Errorf("NumItems = %d, want 2000", tr.NumItems)
	}
	if tr.NumQueries() != 3_000 {
		t.Errorf("NumQueries = %d, want 3000", tr.NumQueries())
	}
	for i, q := range tr.Queries {
		if len(q) == 0 {
			t.Fatalf("query %d empty", i)
		}
		for _, k := range q {
			if int(k) >= tr.NumItems {
				t.Fatalf("query %d: key %d out of range", i, k)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := testProfile()
	a, err := GenerateSeeded(p, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSeeded(p, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different traces")
	}
	c, err := GenerateSeeded(p, 43)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Queries, c.Queries) {
		t.Error("different seeds produced identical traces")
	}
}

func TestGenerateMeanQueryLen(t *testing.T) {
	p := testProfile()
	p.Queries = 20_000
	tr, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	got := tr.MeanQueryLen()
	if math.Abs(got-p.MeanQueryLen) > 0.5 {
		t.Errorf("MeanQueryLen = %v, want ~%v", got, p.MeanQueryLen)
	}
}

// TestGenerateSkew verifies Zipf popularity: the hottest 5%% of items must
// absorb well over half of all accesses for the skews used by the profiles.
func TestGenerateSkew(t *testing.T) {
	tr, err := Generate(testProfile())
	if err != nil {
		t.Fatal(err)
	}
	freq := tr.Frequencies()
	total := 0
	for _, f := range freq {
		total += f
	}
	// Count accesses to the top 5% hottest items.
	type kf struct{ k, f int }
	top := make([]kf, len(freq))
	for k, f := range freq {
		top[k] = kf{k, f}
	}
	// selection of top 5% by frequency via partial sort
	nTop := len(freq) / 20
	for i := 0; i < nTop; i++ {
		maxJ := i
		for j := i + 1; j < len(top); j++ {
			if top[j].f > top[maxJ].f {
				maxJ = j
			}
		}
		top[i], top[maxJ] = top[maxJ], top[i]
	}
	hot := 0
	for i := 0; i < nTop; i++ {
		hot += top[i].f
	}
	// The template model keeps a hot head without letting it dominate
	// (see generate's doc comment); 5% of items drawing ≳40% of accesses
	// is still ~8× the uniform share.
	if frac := float64(hot) / float64(total); frac < 0.35 {
		t.Errorf("top 5%% of items got %.1f%% of accesses, want > 35%%", frac*100)
	}
}

// TestGenerateCommunityStructure verifies that co-occurrence is
// concentrated: keys in the same query share a community far more often
// than uniform sampling would produce.
func TestGenerateCommunityStructure(t *testing.T) {
	p := testProfile()
	tr, community, err := generate(p, p.Seed)
	if err != nil {
		t.Fatal(err)
	}
	samePairs, totalPairs := 0, 0
	for _, q := range tr.Queries {
		for i := 0; i < len(q); i++ {
			for j := i + 1; j < len(q); j++ {
				totalPairs++
				if community[q[i]] == community[q[j]] {
					samePairs++
				}
			}
		}
	}
	if totalPairs == 0 {
		t.Fatal("no key pairs generated")
	}
	frac := float64(samePairs) / float64(totalPairs)
	// Uniform baseline would be ~1/numComm = 2%. Affinity 0.8 should yield
	// a same-community fraction far above that.
	if frac < 0.3 {
		t.Errorf("same-community pair fraction = %.3f, want > 0.3", frac)
	}
}

// TestGenerateIDsNotHotnessOrdered guards against popularity leaking into
// id order: if hot items clustered at low ids, the vanilla sequential
// placement would co-locate them and the baseline comparison would be
// meaningless (real dataset ids are not sorted by popularity).
func TestGenerateIDsNotHotnessOrdered(t *testing.T) {
	p := testProfile()
	p.Queries = 20_000
	tr, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	freq := tr.Frequencies()
	half := len(freq) / 2
	var lo, hi int
	for k, f := range freq {
		if k < half {
			lo += f
		} else {
			hi += f
		}
	}
	ratio := float64(lo) / float64(lo+hi)
	if ratio < 0.35 || ratio > 0.65 {
		t.Errorf("low-id half received %.1f%% of accesses; ids correlate with hotness", ratio*100)
	}
}

func TestProfileValidate(t *testing.T) {
	cases := []func(*Profile){
		func(p *Profile) { p.Items = 0 },
		func(p *Profile) { p.Queries = -1 },
		func(p *Profile) { p.MeanQueryLen = 0.5 },
		func(p *Profile) { p.Communities = 0 },
		func(p *Profile) { p.CommunityAffinity = 1.5 },
		func(p *Profile) { p.ZipfS = 1.0 },
	}
	for i, mutate := range cases {
		p := testProfile()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid profile", i)
		}
	}
	if err := testProfile().Validate(); err != nil {
		t.Errorf("valid profile rejected: %v", err)
	}
}

func TestBuiltinProfilesValid(t *testing.T) {
	for _, p := range Profiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %q invalid: %v", p.Name, err)
		}
		if p.PaperItems <= 0 || p.PaperQueries <= 0 || p.PaperQueryLen <= 0 {
			t.Errorf("profile %q missing paper numbers", p.Name)
		}
	}
	if _, ok := ProfileByName("Criteo"); !ok {
		t.Error("ProfileByName(Criteo) not found")
	}
	if _, ok := ProfileByName("nope"); ok {
		t.Error("ProfileByName(nope) unexpectedly found")
	}
}

func TestScaled(t *testing.T) {
	p := Criteo.Scaled(0.01)
	if p.Items != 1_600 || p.Queries != 1_600 || p.Communities != 115 {
		t.Errorf("Scaled = %d items %d queries %d communities", p.Items, p.Queries, p.Communities)
	}
	tiny := Criteo.Scaled(0.0000001)
	if tiny.Items < 1 || tiny.Queries < 1 || tiny.Communities < 1 {
		t.Errorf("Scaled floor violated: %+v", tiny)
	}
}

func TestSplit(t *testing.T) {
	tr := &Trace{NumItems: 10, Queries: [][]Key{{1}, {2}, {3}, {4}}}
	h, e := tr.Split(0.5)
	if h.NumQueries() != 2 || e.NumQueries() != 2 {
		t.Errorf("Split(0.5): %d/%d, want 2/2", h.NumQueries(), e.NumQueries())
	}
	h, e = tr.Split(-1)
	if h.NumQueries() != 0 || e.NumQueries() != 4 {
		t.Errorf("Split(-1): %d/%d", h.NumQueries(), e.NumQueries())
	}
	h, e = tr.Split(2)
	if h.NumQueries() != 4 || e.NumQueries() != 0 {
		t.Errorf("Split(2): %d/%d", h.NumQueries(), e.NumQueries())
	}
	if h.NumItems != 10 || e.NumItems != 10 {
		t.Error("Split lost NumItems")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr, err := Generate(testProfile().Scaled(0.1))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Error("round trip mismatch")
	}
}

func TestDecodeErrors(t *testing.T) {
	// Bad magic.
	if _, err := Decode(bytes.NewReader([]byte("BOGUS\n\x00\x00"))); err == nil {
		t.Error("Decode accepted bad magic")
	}
	// Truncated stream.
	tr := &Trace{NumItems: 5, Queries: [][]Key{{1, 2, 3}}}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut++ {
		if _, err := Decode(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("Decode accepted truncation at %d bytes", cut)
		}
	}
	// Key out of range.
	bad := &Trace{NumItems: 2, Queries: [][]Key{{5}}}
	buf.Reset()
	if err := bad.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(&buf); err == nil {
		t.Error("Decode accepted out-of-range key")
	}
}

func TestFrequencies(t *testing.T) {
	tr := &Trace{NumItems: 4, Queries: [][]Key{{0, 1, 1}, {3}}}
	got := tr.Frequencies()
	want := []int{1, 2, 0, 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Frequencies = %v, want %v", got, want)
	}
}

func TestPoissonMean(t *testing.T) {
	p := testProfile()
	p.MeanQueryLen = 54 // iFashion-scale mean, exercises long-loop path
	p.Queries = 5_000
	tr, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	got := tr.MeanQueryLen()
	if math.Abs(got-54) > 2 {
		t.Errorf("MeanQueryLen = %v, want ~54", got)
	}
}

// Property: arbitrary random traces survive the binary codec unchanged.
func TestEncodeDecodeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		tr := &Trace{NumItems: n}
		for q := 0; q < rng.Intn(40); q++ {
			l := rng.Intn(10)
			query := make([]Key, l)
			for j := range query {
				query[j] = Key(rng.Intn(n))
			}
			tr.Queries = append(tr.Queries, query)
		}
		var buf bytes.Buffer
		if err := tr.Encode(&buf); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		if got.NumItems != tr.NumItems || len(got.Queries) != len(tr.Queries) {
			return false
		}
		for i := range tr.Queries {
			if len(got.Queries[i]) != len(tr.Queries[i]) {
				return false
			}
			for j := range tr.Queries[i] {
				if got.Queries[i][j] != tr.Queries[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
