package maxembed

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"maxembed/internal/cache"
	"maxembed/internal/embedding"
	"maxembed/internal/hypergraph"
	"maxembed/internal/layout"
	"maxembed/internal/placement"
	"maxembed/internal/serving"
	"maxembed/internal/ssd"
	"maxembed/internal/store"
	"maxembed/internal/workload"
)

// Key identifies an embedding; the key space is dense [0, NumItems).
type Key = uint32

// Strategy selects the offline placement algorithm.
type Strategy = placement.Strategy

// Placement strategies. StrategyMaxEmbed is the paper's solution;
// StrategySHP is the Bandana baseline; StrategyRPP/StrategyFPR are the
// §5 strawmen; StrategyVanilla is sequential placement.
const (
	StrategyVanilla  = placement.StrategyVanilla
	StrategySHP      = placement.StrategySHP
	StrategyRPP      = placement.StrategyRPP
	StrategyFPR      = placement.StrategyFPR
	StrategyMaxEmbed = placement.StrategyMaxEmbed
)

// DeviceProfile describes the simulated SSD model.
type DeviceProfile = ssd.Profile

// Built-in device profiles (§8.1, Fig 17b).
var (
	DeviceP5800X = ssd.P5800X
	DeviceP4510  = ssd.P4510
)

// DeviceRAID0 stripes n drives of the base profile.
func DeviceRAID0(base DeviceProfile, n int) DeviceProfile { return ssd.RAID0(base, n) }

// FaultConfig parameterizes deterministic device fault injection: per-read
// error/timeout/corruption probabilities and latency disturbances. See
// ssd.InjectorConfig for field documentation.
type FaultConfig = ssd.InjectorConfig

// config is assembled by Options.
type config struct {
	strategy     Strategy
	dim          int
	pageSize     int
	ratio        float64
	indexLimit   int
	cacheEntries int
	cacheRatio   float64
	pipeline     bool
	greedy       bool
	segmented    bool
	recordLast   int
	seed         int64
	device       DeviceProfile
	devices      int
	tiers        []ssd.TierSpec
	pinTop       int
	shadowSizes  []int
	shadow       bool
	timingOnly   bool
	faults       *FaultConfig
	hotSpare     bool
	autoRebuild  bool
	rebuildRate  float64
	coact        bool
	fileDir      string
}

// despreadEnabled reports whether the shard-assignment pass
// (placement.Despread) runs after placement: it needs multiple shards,
// and either explicit co-activation placement or a tiered array — whose
// Retier pass permutes page IDs by heat alone and can break the replica
// shard diversity Build emitted, which the pass repairs even without
// co-activation input.
func (c config) despreadEnabled(tierMap []int) bool {
	return c.devices > 1 && (c.coact || tierMap != nil)
}

// Option customizes Open.
type Option func(*config)

// WithStrategy selects the placement strategy (default StrategyMaxEmbed).
func WithStrategy(s Strategy) Option { return func(c *config) { c.strategy = s } }

// WithEmbeddingDim sets the embedding dimension (default 64, the paper's
// default 256-byte vectors).
func WithEmbeddingDim(dim int) Option { return func(c *config) { c.dim = dim } }

// WithReplicationRatio sets r, the replica budget as a fraction of the key
// count (default 0.1).
func WithReplicationRatio(r float64) Option { return func(c *config) { c.ratio = r } }

// WithIndexLimit sets k for index shrinking (§6.1); 0 keeps all entries.
// Default 10, the paper's sweet spot (Fig 16).
func WithIndexLimit(k int) Option { return func(c *config) { c.indexLimit = k } }

// WithCacheEntries sets the DRAM cache capacity in embeddings (overrides
// WithCacheRatio). 0 disables the cache.
func WithCacheEntries(n int) Option {
	return func(c *config) { c.cacheEntries = n; c.cacheRatio = -1 }
}

// WithCacheRatio sizes the DRAM cache as a fraction of the key count
// (default 0.1, the paper's default §8.1).
func WithCacheRatio(f float64) Option { return func(c *config) { c.cacheRatio = f } }

// WithSegmentedCache switches the DRAM cache from plain LRU (the paper's
// configuration) to a scan-resistant segmented LRU.
func WithSegmentedCache() Option { return func(c *config) { c.segmented = true } }

// WithHistoryRecording keeps the distinct key sets of the last n served
// queries; retrieve them with RecordedHistory and feed them to Refresh to
// adapt replication to live traffic.
func WithHistoryRecording(n int) Option { return func(c *config) { c.recordLast = n } }

// WithoutPipeline disables selection/IO pipelining (the Fig 15 "Raw"
// configuration). Pipelining is on by default.
func WithoutPipeline() Option { return func(c *config) { c.pipeline = false } }

// WithGreedySelection uses classic greedy set cover instead of the
// one-pass algorithm (ablation).
func WithGreedySelection() Option { return func(c *config) { c.greedy = true } }

// WithSeed fixes all randomized choices (default 1).
func WithSeed(seed int64) Option { return func(c *config) { c.seed = seed } }

// WithDevice selects the simulated SSD profile (default DeviceP5800X).
func WithDevice(p DeviceProfile) Option { return func(c *config) { c.device = p } }

// WithDevices stripes the layout across n independent simulated devices of
// the configured profile (an ssd.Array: page p lives on device p mod n),
// with per-shard queue pairs, shard-aware replica placement, and per-shard
// stats. n <= 1 keeps the historical single-device deployment.
func WithDevices(n int) Option { return func(c *config) { c.devices = n } }

// TierSpec describes one tier of a heterogeneous device array: a device
// profile and how many array shards use it.
type TierSpec = ssd.TierSpec

// WithTiers stripes the layout across a heterogeneous device array mixing
// the given device classes — e.g. one P5800X-class shard fronting three
// P4510-class shards. Tier ranks follow read latency (fastest = tier 0)
// regardless of spec order. At Open, pages are assigned to tiers by
// expected access heat from the build history (hottest pages on the fast
// tier); each Refresh re-tiers from the recorder's observed counts,
// promoting and demoting pages at that refresh boundary only. Overrides
// WithDevice/WithDevices.
func WithTiers(specs ...TierSpec) Option {
	return func(c *config) { c.tiers = append([]ssd.TierSpec(nil), specs...) }
}

// WithCoActivationPlacement feeds the co-appearance hypergraph into shard
// assignment: within each tier's residue classes, page IDs are permuted so
// pages serving the same recurring query sets land on different shards
// (placement.Despread), minimizing the per-query max-shard depth that
// bounds tail latency at high load. The pass runs at Open from the build
// history and again at each Refresh from the newer history, emitted as a
// page-ID permutation that rides the same refresh-boundary atomic hot-swap
// as re-tiering — replica emission, recovery, scrubbing, and rebuild are
// untouched. Requires WithDevices(n > 1) or WithTiers; ignored on a
// single-device DB. On tiered arrays the replica shard-diversity half of
// the pass runs even without this option.
func WithCoActivationPlacement() Option { return func(c *config) { c.coact = true } }

// WithDRAMPins pins the n hottest keys (by build-history frequency,
// re-ranked at each Refresh) permanently in DRAM, above the LRU cache:
// they always hit and are never evicted. The pin-set is additional DRAM
// on top of the cache budget.
func WithDRAMPins(n int) Option { return func(c *config) { c.pinTop = n } }

// WithShadowCache attaches keys-only ghost caches simulating LRUs of the
// given entry capacities over the live distinct-key stream; their measured
// hit-rate curve (DB.ShadowCurve) is how the DRAM cache size is chosen
// from data. With no explicit capacities a geometric grid over the key
// space (1%–32%) is simulated. Ghost caches cost host memory proportional
// to the largest simulated capacity but charge no virtual time.
func WithShadowCache(capacities ...int) Option {
	return func(c *config) {
		c.shadow = true
		c.shadowSizes = append([]int(nil), capacities...)
	}
}

// TimingOnly skips materializing page payloads: lookups return no vectors
// but all timing and page-read accounting is exact. Useful for large
// parameter sweeps.
func TimingOnly() Option { return func(c *config) { c.timingOnly = true } }

// WithHotSpare attaches an idle spare device (same profile as the array
// members) that a shard rebuild can stream a failed shard onto. Requires
// WithDevices(n > 1); ignored on a single-device DB.
func WithHotSpare() Option { return func(c *config) { c.hotSpare = true } }

// WithAutoRebuild arms self-healing: when a shard is declared failed
// (fault window saturation or FailShard), a background rebuild streams it
// onto the hot spare and hot-swaps the repaired array into the serving
// handle with no operator in the loop. pagesPerSec bounds the rebuild
// rate in pages per virtual second (0 uses the rebuilder's default).
// Implies WithHotSpare.
func WithAutoRebuild(pagesPerSec float64) Option {
	return func(c *config) {
		c.hotSpare = true
		c.autoRebuild = true
		c.rebuildRate = pagesPerSec
	}
}

// WithFileBackend serves reads from real files instead of the simulated
// device model: at Open the built store is written to one file per shard
// under dir (shard000.bin, ...), opened with O_DIRECT when the filesystem
// allows it, and read through the asynchronous real-I/O backend (io_uring
// where available, a pread goroutine pool otherwise). Lookups then return
// zero-copy views into the backend's completion buffers and all latency
// accounting is measured wall-clock time rather than simulation. Point dir
// at an NVMe-backed filesystem to exercise real hardware. Combine with
// WithDevices(n) to stripe across n shard files.
//
// Incompatible with TimingOnly (payloads must exist to be written),
// WithTiers, WithFaultInjection, WithHotSpare/WithAutoRebuild (all
// simulator-only), and with Refresh (the on-disk pages would go stale).
// Call DB.Close to release the backend's files.
func WithFileBackend(dir string) Option { return func(c *config) { c.fileDir = dir } }

// WithFaultInjection arms the simulated device with a deterministic fault
// injector: reads fail, time out, spike, or deliver corrupt payloads at
// the configured rates, and the serving engine's recovery path (retry,
// replica rescue, graceful degradation) absorbs them. Primarily for
// resilience testing and chaos-style sweeps.
func WithFaultInjection(fc FaultConfig) Option {
	return func(c *config) { c.faults = &fc }
}

// DB is an opened embedding store: the offline phase's output plus the
// shared state of the online phase. DB is safe for concurrent use through
// per-goroutine Sessions. The serving engine lives behind a versioned
// swappable handle so Refresh can hot-swap a re-placed layout under live
// traffic: existing Sessions pick the new engine up at their next query
// boundary instead of being stranded on the old layout.
type DB struct {
	cfg      config
	backend  ssd.Backend
	syn      *embedding.Synthesizer
	recorder *serving.HistoryRecorder
	handle   *serving.Swappable

	mu               sync.Mutex
	lay              *layout.Layout
	src              serving.PageSource // current store image (nil when timing-only)
	defaultSess      *Session
	lastRefreshTotal int64 // recorder.Total() at the last successful Refresh
	pins             []Key // current DRAM pin-set (hottest keys), re-ranked per Refresh
	lastRetier       *placement.TierReport
	lastDespread     *placement.SpreadReport

	rebuildMu    sync.Mutex // serializes shard rebuilds (admin- and auto-triggered)
	scrubMu      sync.Mutex // serializes scrub sweeps
	autoRebuilds atomic.Int64
	autoErrors   atomic.Int64
}

// Open runs the offline phase over the historical queries and returns a
// serving-ready DB. numItems bounds the key space; every key in history
// and in later lookups must be below it.
func Open(numItems int, history [][]Key, opts ...Option) (*DB, error) {
	cfg := config{
		strategy:   StrategyMaxEmbed,
		dim:        64,
		pageSize:   4096,
		ratio:      0.1,
		indexLimit: 10,
		cacheRatio: 0.1,
		pipeline:   true,
		seed:       1,
		device:     DeviceP5800X,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if len(cfg.tiers) > 0 {
		cfg.devices = 0
		for _, t := range cfg.tiers {
			cfg.devices += t.Devices
		}
	}
	if cfg.devices < 1 {
		cfg.devices = 1
	}
	if numItems < 0 {
		return nil, errors.New("maxembed: numItems must be non-negative")
	}
	if cfg.fileDir != "" {
		switch {
		case cfg.timingOnly:
			return nil, errors.New("maxembed: WithFileBackend is incompatible with TimingOnly (nothing to write)")
		case len(cfg.tiers) > 0:
			return nil, errors.New("maxembed: WithFileBackend is incompatible with WithTiers (simulator-only)")
		case cfg.faults != nil:
			return nil, errors.New("maxembed: WithFileBackend is incompatible with WithFaultInjection (simulator-only)")
		case cfg.hotSpare || cfg.autoRebuild:
			return nil, errors.New("maxembed: WithFileBackend is incompatible with hot-spare rebuilds (simulator-only)")
		}
	}

	g, err := hypergraph.FromQueries(numItems, history)
	if err != nil {
		return nil, fmt.Errorf("maxembed: building hypergraph: %w", err)
	}
	capacity := embedding.PageCapacity(cfg.pageSize, cfg.dim)
	lay, err := placement.Build(cfg.strategy, g, placement.Options{
		Capacity:         capacity,
		ReplicationRatio: cfg.ratio,
		Seed:             cfg.seed,
		Shards:           cfg.devices,
	})
	if err != nil {
		return nil, fmt.Errorf("maxembed: placement: %w", err)
	}

	// With a file backend the read target is built from the store image
	// below (the files ARE the store); only simulated DBs get a device
	// model here.
	var backend ssd.Backend
	if cfg.fileDir != "" {
		// backend assembled after the store is materialized.
	} else if len(cfg.tiers) > 0 {
		arr, err := ssd.NewTieredArray(cfg.tiers)
		if err != nil {
			return nil, fmt.Errorf("maxembed: tiered array: %w", err)
		}
		if cfg.faults != nil {
			arr.SetFaultModel(ssd.NewInjector(*cfg.faults))
		}
		backend = arr
	} else if cfg.devices > 1 {
		arr, err := ssd.NewArray(cfg.device, cfg.devices)
		if err != nil {
			return nil, fmt.Errorf("maxembed: device array: %w", err)
		}
		if cfg.faults != nil {
			arr.SetFaultModel(ssd.NewInjector(*cfg.faults))
		}
		backend = arr
	} else {
		device, err := ssd.NewDevice(cfg.device)
		if err != nil {
			return nil, fmt.Errorf("maxembed: device: %w", err)
		}
		if cfg.faults != nil {
			device.SetFaultModel(ssd.NewInjector(*cfg.faults))
		}
		backend = device
	}

	// Hotness pass: per-key frequency from the build history drives the
	// initial tier placement (hottest pages up-tier) and the DRAM pin-set.
	db := &DB{cfg: cfg, backend: backend}
	var retierRep *placement.TierReport
	tm := tierMapOf(backend)
	if tm != nil || cfg.pinTop > 0 {
		freq := placement.KeyFreqFromGraph(g, numItems)
		if tm != nil {
			heat := placement.PageHeat(lay, placement.DiscountTop(freq, cfg.dramResidents(lay.NumKeys)))
			lay, retierRep, err = placement.Retier(lay, heat, tm)
			if err != nil {
				return nil, fmt.Errorf("maxembed: tier placement: %w", err)
			}
		}
		db.pins = placement.TopKeys(freq, cfg.pinTop)
	}
	var spreadRep *placement.SpreadReport
	if cfg.despreadEnabled(tm) {
		var cg *hypergraph.Graph
		if cfg.coact {
			cg = g
		}
		lay, spreadRep, err = placement.Despread(lay, cg, cfg.devices, tm)
		if err != nil {
			return nil, fmt.Errorf("maxembed: co-activation placement: %w", err)
		}
	}
	db.lay = lay
	db.lastRetier = retierRep
	db.lastDespread = spreadRep
	var src serving.PageSource
	if !cfg.timingOnly {
		db.syn, err = embedding.NewSynthesizer(cfg.dim, cfg.seed)
		if err != nil {
			return nil, fmt.Errorf("maxembed: %w", err)
		}
		src, err = db.buildStore(lay)
		if err != nil {
			return nil, err
		}
	}
	db.src = src
	if cfg.fileDir != "" {
		fb, err := buildFileBackend(cfg.fileDir, src, cfg.devices)
		if err != nil {
			return nil, err
		}
		db.backend = fb
	}

	if cfg.recordLast > 0 {
		db.recorder = serving.NewHistoryRecorder(cfg.recordLast)
	}
	eng, err := serving.New(db.engineConfig(lay, src))
	if err != nil {
		return nil, fmt.Errorf("maxembed: engine: %w", err)
	}
	db.handle = serving.NewSwappable(eng)
	if err := db.armSpare(); err != nil {
		return nil, err
	}
	return db, nil
}

// cacheEntriesFor resolves the configured DRAM cache capacity for a key
// count (WithCacheEntries wins over WithCacheRatio).
func (c config) cacheEntriesFor(numKeys int) int {
	if c.cacheRatio >= 0 {
		return int(c.cacheRatio * float64(numKeys))
	}
	return c.cacheEntries
}

// dramResidents is the number of keys the DRAM layer is expected to hold:
// the pin-set plus the steady-state cache. Tier heat discounts these keys
// (placement.DiscountTop) so the fast tier captures the traffic DRAM lets
// through rather than re-hosting pages DRAM already shields.
func (c config) dramResidents(numKeys int) int {
	return c.pinTop + c.cacheEntriesFor(numKeys)
}

// engineConfig assembles a serving config over the given layout and page
// source from the DB's tuning knobs and current backend. The caller must
// hold db.mu or be inside Open (before the DB escapes).
func (db *DB) engineConfig(lay *layout.Layout, src serving.PageSource) serving.Config {
	cacheEntries := db.cfg.cacheEntriesFor(lay.NumKeys)
	engCfg := serving.Config{
		Layout:         lay,
		CacheEntries:   cacheEntries,
		SegmentedCache: db.cfg.segmented,
		IndexLimit:     db.cfg.indexLimit,
		Pipeline:       db.cfg.pipeline,
		Greedy:         db.cfg.greedy,
		Recorder:       db.recorder,
		PinnedKeys:     db.pins,
	}
	if db.cfg.shadow {
		engCfg.ShadowSizes = db.cfg.shadowSizes
		if len(engCfg.ShadowSizes) == 0 {
			// Default grid: a geometric sweep over the key space wide
			// enough to bracket any sensible DRAM budget.
			for _, f := range []float64{0.01, 0.02, 0.04, 0.08, 0.16, 0.32} {
				if n := int(f * float64(lay.NumKeys)); n > 0 {
					engCfg.ShadowSizes = append(engCfg.ShadowSizes, n)
				}
			}
		}
	}
	db.bindBackend(&engCfg)
	if src != nil {
		// Assign only when non-nil: a typed-nil store pointer in the
		// PageSource interface would read as "store present".
		engCfg.Store = src
	}
	return engCfg
}

// buildStore materializes page payloads for the layout: a single Store on
// one device, a Sharded store (striped exactly like the device array) on
// several. Returns a non-interface nil when the DB is timing-only.
func (db *DB) buildStore(lay *layout.Layout) (serving.PageSource, error) {
	if db.syn == nil {
		return nil, nil
	}
	if db.cfg.devices > 1 {
		sh, err := store.BuildSharded(lay, db.syn, db.cfg.pageSize, db.cfg.devices)
		if err != nil {
			return nil, fmt.Errorf("maxembed: store: %w", err)
		}
		return sh, nil
	}
	st, err := store.Build(lay, db.syn, db.cfg.pageSize)
	if err != nil {
		return nil, fmt.Errorf("maxembed: store: %w", err)
	}
	return st, nil
}

// buildFileBackend writes the built store to one file per shard under dir
// and opens the asynchronous real-I/O backend over them. The files are the
// serving copy: reads go through them (O_DIRECT where supported), while
// the in-memory store stays wired as the engine's PageSource for pinning
// and fallback.
func buildFileBackend(dir string, src serving.PageSource, shards int) (*ssd.FileBackend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("maxembed: file backend dir: %w", err)
	}
	shardStore := func(i int) *store.Store {
		if sh, ok := src.(*store.Sharded); ok {
			return sh.Shard(i)
		}
		return src.(*store.Store)
	}
	files := make([]*store.FileStore, 0, shards)
	closeAll := func() {
		for _, f := range files {
			f.Close()
		}
	}
	for i := 0; i < shards; i++ {
		path := filepath.Join(dir, fmt.Sprintf("shard%03d.bin", i))
		f, err := os.Create(path)
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("maxembed: file backend shard %d: %w", i, err)
		}
		if _, err := shardStore(i).WriteTo(f); err != nil {
			f.Close()
			closeAll()
			return nil, fmt.Errorf("maxembed: writing shard %d: %w", i, err)
		}
		if err := f.Close(); err != nil {
			closeAll()
			return nil, fmt.Errorf("maxembed: writing shard %d: %w", i, err)
		}
		fs, _, err := store.OpenFileAuto(path)
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("maxembed: opening shard %d: %w", i, err)
		}
		files = append(files, fs)
	}
	fb, err := ssd.NewFileBackend(files, ssd.FileBackendConfig{})
	if err != nil {
		closeAll()
		return nil, fmt.Errorf("maxembed: file backend: %w", err)
	}
	return fb, nil
}

// Close releases resources the DB holds outside the Go heap — today the
// file backend's descriptors and executor goroutines (WithFileBackend).
// Simulated DBs hold none and Close is a no-op. Lookups must have
// quiesced; Sessions must not be used afterwards.
func (db *DB) Close() error {
	if fb, ok := db.backend.(*ssd.FileBackend); ok {
		return fb.Close()
	}
	return nil
}

// tierMapOf returns the shard→tier map of a multi-tier backend, nil for
// single-tier (homogeneous) backends — the signal that tier placement is
// a no-op.
func tierMapOf(be ssd.Backend) []int {
	if tr, ok := be.(ssd.TierReporter); ok && tr.NumTiers() > 1 {
		if arr, ok := be.(*ssd.Array); ok {
			return arr.TierShardMap()
		}
	}
	return nil
}

// bindBackend points the engine config at the DB's read target through
// whichever of the two mutually exclusive fields matches its shape.
func (db *DB) bindBackend(engCfg *serving.Config) {
	if dev, ok := db.backend.(*ssd.Device); ok {
		engCfg.Device = dev
		return
	}
	engCfg.Backend = db.backend
}

// Session is a single-threaded serving handle with its own virtual clock
// and SSD queue pair. Create one per goroutine; a Session itself is not
// safe for concurrent use.
type Session struct {
	handle *serving.Swappable
	w      *serving.Worker
	gen    uint64
}

// NewSession returns an independent serving session bound to the DB's
// current layout. A later Refresh is picked up automatically at the
// session's next query boundary: the session re-binds to the swapped-in
// engine, keeping its virtual clock, so no query ever mixes layouts.
func (db *DB) NewSession() *Session {
	eng, gen := db.handle.Load()
	return &Session{handle: db.handle, w: eng.NewWorker(), gen: gen}
}

// rebind moves the session onto the current engine when a Refresh has
// swapped one in since the session's last query. The worker's virtual
// clock carries over so the session's timeline stays monotonic.
func (s *Session) rebind() {
	eng, gen := s.handle.Load()
	if gen != s.gen {
		now := s.w.Now()
		s.w = eng.NewWorker()
		s.w.SetNow(now)
		s.gen = gen
	}
}

// Generation returns the layout generation the session is currently bound
// to (it advances at the first query boundary after a Refresh).
func (s *Session) Generation() uint64 { return s.gen }

// Result is one lookup's outcome.
type Result = serving.Result

// QueryStats describes one query's work and virtual timing.
type QueryStats = serving.QueryStats

// Lookup fetches the embeddings of the queried keys. Returned slices are
// reused by the session; consume them before the next Lookup.
func (s *Session) Lookup(query []Key) (Result, error) {
	s.rebind()
	return s.w.Lookup(query)
}

// BatchResult is one coalesced batch lookup's outcome: per-query scattered
// results plus combined-pass stats.
type BatchResult = serving.BatchResult

// LookupBatch serves several queries as one coalesced lookup: one combined
// dedupe/selection/read pass over all queries shares page reads across them
// (keys occurring in multiple queries are fetched once, and co-located keys
// of different queries ride the same read), then results are scattered back
// per query — each query receives exactly its keys, its own FailedKeys, and
// attributed stats. Returned slices are reused by the session; consume them
// before the next lookup.
func (s *Session) LookupBatch(queries [][]Key) (BatchResult, error) {
	s.rebind()
	return s.w.LookupBatch(queries)
}

// Now returns the session's virtual clock in nanoseconds.
func (s *Session) Now() int64 { return s.w.Now() }

// Lookup is a convenience single-session lookup, serialized on an internal
// session. For concurrent or performance-sensitive use, create explicit
// Sessions.
func (db *DB) Lookup(query []Key) (Result, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.defaultSess == nil {
		db.defaultSess = db.NewSession()
	}
	return db.defaultSess.Lookup(query)
}

// Refresh recomputes the replica pages from a newer query history while
// keeping every key's home page fixed — the base table on SSD is not
// rewritten, only the (much smaller) replica region and the DRAM indexes.
// Only meaningful for StrategyMaxEmbed-style layouts.
//
// On a tiered DB (WithTiers) a refresh is also the promotion/demotion
// boundary: page heat is recomputed from the new history and pages are
// re-assigned to tiers (hottest up), permuting page IDs so that each
// page's stripe shard lands on its assigned tier. WithDRAMPins re-ranks
// the pin-set from the same frequencies. Tier moves happen only here —
// never mid-serving — so reads observe one consistent generation.
//
// The rebuild runs entirely off the serving path: placement, store, and
// engine are constructed and validated first, then swapped in atomically.
// Live Sessions (and the HTTP server's pooled and coalescer workers) pick
// the new layout up at their next query boundary; queries in flight finish
// on the old engine, whose page images stay alive until its last worker
// lets go.
func (db *DB) Refresh(history [][]Key) error {
	if db.cfg.strategy != StrategyMaxEmbed {
		return fmt.Errorf("maxembed: Refresh requires StrategyMaxEmbed, have %q", db.cfg.strategy)
	}
	if db.cfg.fileDir != "" {
		// A refresh re-places replicas, but the shard files on disk keep
		// the old placement — serving the new layout against them would
		// read keys from pages that no longer hold them.
		return errors.New("maxembed: Refresh is not supported on a file backend (on-disk pages would go stale)")
	}
	db.mu.Lock()
	cur := db.lay
	tm := tierMapOf(db.backend)
	db.mu.Unlock()
	g, err := hypergraph.FromQueries(cur.NumKeys, history)
	if err != nil {
		return fmt.Errorf("maxembed: refresh hypergraph: %w", err)
	}
	assign := make([]int32, cur.NumKeys)
	for k, p := range cur.Home {
		assign[k] = int32(p)
	}
	base, err := placement.Replicate(g, assign, placement.Options{
		Capacity:         cur.Capacity,
		ReplicationRatio: db.cfg.ratio,
		Seed:             db.cfg.seed,
		Shards:           db.cfg.devices,
	})
	if err != nil {
		return fmt.Errorf("maxembed: refresh replication: %w", err)
	}
	for attempt := 0; ; attempt++ {
		lay := base
		var (
			retierRep *placement.TierReport
			spreadRep *placement.SpreadReport
			pins      []Key
		)
		if tm != nil || db.cfg.pinTop > 0 {
			freq := placement.KeyFreq(cur.NumKeys, history)
			if tm != nil {
				heat := placement.PageHeat(lay, placement.DiscountTop(freq, db.cfg.dramResidents(lay.NumKeys)))
				lay, retierRep, err = placement.Retier(lay, heat, tm)
				if err != nil {
					return fmt.Errorf("maxembed: refresh re-tier: %w", err)
				}
			}
			pins = placement.TopKeys(freq, db.cfg.pinTop)
		}
		if db.cfg.despreadEnabled(tm) {
			var cg *hypergraph.Graph
			if db.cfg.coact {
				cg = g
			}
			lay, spreadRep, err = placement.Despread(lay, cg, db.cfg.devices, tm)
			if err != nil {
				return fmt.Errorf("maxembed: refresh co-activation placement: %w", err)
			}
		}
		src, err := db.buildStore(lay)
		if err != nil {
			return fmt.Errorf("maxembed: refresh store: %w", err)
		}
		db.mu.Lock()
		// A concurrent shard rebuild may have replaced the backend since
		// the tier map was sampled — a failed fast shard rebuilt onto a
		// dense spare collapses or shrinks the fast tier. Re-tiering with
		// the stale map would promote hot pages onto shards that are no
		// longer fast, so redo the tier pass against the re-derived map
		// instead of swapping in a mismatched layout.
		if fresh := tierMapOf(db.backend); !intSliceEqual(tm, fresh) {
			db.mu.Unlock()
			if attempt >= 2 {
				return fmt.Errorf("maxembed: refresh: backend tier geometry changed %d times mid-refresh; retry", attempt+1)
			}
			tm = fresh
			continue
		}
		defer db.mu.Unlock()
		db.pins = pins
		eng, err := serving.New(db.engineConfig(lay, src))
		if err != nil {
			return fmt.Errorf("maxembed: refresh engine: %w", err)
		}
		if _, err := db.handle.Swap(eng); err != nil {
			return fmt.Errorf("maxembed: refresh swap: %w", err)
		}
		db.lay = lay
		db.src = src
		db.lastRetier = retierRep
		db.lastDespread = spreadRep
		if db.recorder != nil {
			db.lastRefreshTotal = db.recorder.Total()
		}
		return nil
	}
}

// intSliceEqual reports whether two shard→tier maps are identical.
func intSliceEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// RefreshNow snapshots the recorded query history and refreshes the layout
// from it. It is the hook the HTTP server's refresh loop and admin endpoint
// call; it requires history recording (WithHistoryRecording) and at least
// one recorded query.
func (db *DB) RefreshNow() error {
	if db.recorder == nil {
		return fmt.Errorf("maxembed: RefreshNow requires history recording (WithHistoryRecording)")
	}
	history := db.recorder.Snapshot()
	if len(history) == 0 {
		return fmt.Errorf("maxembed: RefreshNow: no recorded queries yet")
	}
	return db.Refresh(history)
}

// PendingQueries reports how many queries have been recorded since the last
// successful Refresh — the signal a refresh loop gates on. Zero when history
// recording is disabled.
func (db *DB) PendingQueries() int64 {
	if db.recorder == nil {
		return 0
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.recorder.Total() - db.lastRefreshTotal
}

// LayoutGeneration returns the current layout generation, starting at 1 and
// incremented by each successful Refresh.
func (db *DB) LayoutGeneration() uint64 { return db.handle.Generation() }

// Handle exposes the swappable engine handle so serving frontends can follow
// refreshes without holding a stale *Engine.
func (db *DB) Handle() *serving.Swappable { return db.handle }

// RecordedHistory returns the key sets of recently served queries when
// history recording is enabled (WithHistoryRecording), oldest first. The
// natural refresh loop is db.Refresh(db.RecordedHistory()).
func (db *DB) RecordedHistory() [][]Key {
	if db.recorder == nil {
		return nil
	}
	return db.recorder.Snapshot()
}

// LayoutStats summarizes the placement the offline phase produced.
func (db *DB) LayoutStats() layout.Stats {
	db.mu.Lock()
	lay := db.lay
	db.mu.Unlock()
	return lay.ComputeStats()
}

// DeviceStats returns accumulated simulated-device statistics, summed over
// all shards when the DB spans multiple devices.
func (db *DB) DeviceStats() ssd.Stats { return db.backend.Stats() }

// ShardStats returns per-device statistics, one entry per shard (a single
// entry on a single-device DB).
func (db *DB) ShardStats() []ssd.Stats {
	if arr, ok := db.backend.(*ssd.Array); ok {
		return arr.ShardStats()
	}
	return []ssd.Stats{db.backend.Stats()}
}

// Device exposes the first simulated SSD shard for harnesses (e.g.
// fault-injection tests). With multiple devices it returns shard 0; use
// Backend for the whole array.
func (db *DB) Device() *ssd.Device { return db.backend.Shard(0) }

// Backend exposes the DB's full read target: the single simulated device,
// or the striped ssd.Array when opened WithDevices(n > 1).
func (db *DB) Backend() ssd.Backend { return db.backend }

// NumDevices returns the number of independent simulated devices the DB's
// pages are striped over.
func (db *DB) NumDevices() int { return db.backend.NumShards() }

// Tiers describes the backend's device tiers, fastest first: which shards
// each tier owns and the device profile they share. A homogeneous DB
// reports a single tier; see ssd.TierInfo.
func (db *DB) Tiers() []ssd.TierInfo {
	tr, ok := db.backend.(ssd.TierReporter)
	if !ok {
		return nil
	}
	out := make([]ssd.TierInfo, tr.NumTiers())
	for t := range out {
		out[t] = tr.Tier(t)
	}
	return out
}

// TierStats returns accumulated device statistics aggregated per tier
// (fastest first). A homogeneous DB reports a single entry equal to
// DeviceStats.
func (db *DB) TierStats() []ssd.Stats {
	if arr, ok := db.backend.(*ssd.Array); ok {
		return arr.TierStats()
	}
	return []ssd.Stats{db.backend.Stats()}
}

// LastRetier reports the most recent tier-placement pass (at Open or the
// last Refresh): pages promoted to a faster tier, demoted to a slower one,
// and the per-tier heat distribution. Nil on non-tiered DBs.
func (db *DB) LastRetier() *placement.TierReport {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.lastRetier
}

// LastDespread reports the most recent shard-assignment pass (at Open or
// the last Refresh): co-activation spread before/after, replica shard
// collisions repaired, and keys left without a shard-diverse replica. Nil
// unless the pass ran (WithCoActivationPlacement, or a tiered multi-device
// DB whose diversity repair runs implicitly).
func (db *DB) LastDespread() *placement.SpreadReport {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.lastDespread
}

// PinnedKeys returns the current DRAM pin-set, hottest first (empty
// without WithDRAMPins).
func (db *DB) PinnedKeys() []Key {
	db.mu.Lock()
	defer db.mu.Unlock()
	return append([]Key(nil), db.pins...)
}

// ShadowCurve returns the ghost caches' measured hit-rate curve, ascending
// by simulated capacity (nil without WithShadowCache). The curve reflects
// the distinct-key stream served since the current engine generation began.
func (db *DB) ShadowCurve() []cache.CurvePoint {
	sh := db.handle.Engine().Shadow()
	if sh == nil {
		return nil
	}
	return sh.Curve()
}

// RecommendCacheEntries applies the miss-rate-curve knee rule to the shadow
// curve: the smallest simulated capacity whose hit rate is within tolerance
// of the best observed (0 without WithShadowCache or before any traffic).
func (db *DB) RecommendCacheEntries(tolerance float64) int {
	sh := db.handle.Engine().Shadow()
	if sh == nil {
		return 0
	}
	return sh.Recommend(tolerance)
}

// Engine exposes the current serving engine for benchmarking harnesses.
// After a Refresh the returned engine is stale; long-lived frontends should
// use Handle instead.
func (db *DB) Engine() *serving.Engine { return db.handle.Engine() }

// TraceProfile identifies a built-in synthetic dataset profile modelled on
// the paper's Table 3.
type TraceProfile = workload.Profile

// Built-in dataset profiles (scaled; see DESIGN.md §2).
var (
	ProfileAmazonM2        = workload.AmazonM2
	ProfileAlibabaIFashion = workload.AlibabaIFashion
	ProfileAvazu           = workload.Avazu
	ProfileCriteo          = workload.Criteo
	ProfileCriteoTB        = workload.CriteoTB
)

// Trace is a query log over a dense key space.
type Trace = workload.Trace

// GenerateTrace synthesizes a trace for the profile, scaled by the given
// factor (1.0 = the profile's default size).
func GenerateTrace(p TraceProfile, scale float64) (*Trace, error) {
	if scale != 1.0 {
		p = p.Scaled(scale)
	}
	return workload.Generate(p)
}
