package maxembed

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

func smallTrace(t *testing.T) *Trace {
	t.Helper()
	tr, err := GenerateTrace(ProfileAmazonM2, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestOpenAndLookup(t *testing.T) {
	tr := smallTrace(t)
	history, eval := tr.Split(0.5)
	db, err := Open(tr.NumItems, history.Queries, WithReplicationRatio(0.2), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	sess := db.NewSession()
	for i := 0; i < 100 && i < len(eval.Queries); i++ {
		res, err := sess.Lookup(eval.Queries[i])
		if err != nil {
			t.Fatal(err)
		}
		distinct := map[Key]bool{}
		for _, k := range eval.Queries[i] {
			distinct[k] = true
		}
		if len(res.Keys) != len(distinct) {
			t.Fatalf("query %d: got %d keys, want %d", i, len(res.Keys), len(distinct))
		}
		for j, v := range res.Vectors {
			if len(v) != 64 {
				t.Fatalf("vector %d has dim %d", j, len(v))
			}
		}
	}
	if db.DeviceStats().Reads == 0 {
		t.Error("no SSD reads recorded")
	}
	ls := db.LayoutStats()
	if ls.ReplicationRatio <= 0 || ls.ReplicationRatio > 0.2 {
		t.Errorf("ReplicationRatio = %v, want (0, 0.2]", ls.ReplicationRatio)
	}
}

func TestOpenDefaultsAndOptions(t *testing.T) {
	tr := smallTrace(t)
	for _, opts := range [][]Option{
		nil,
		{WithStrategy(StrategySHP)},
		{WithStrategy(StrategyRPP), WithReplicationRatio(0.3)},
		{WithStrategy(StrategyFPR), WithReplicationRatio(0.3)},
		{WithStrategy(StrategyVanilla)},
		{WithEmbeddingDim(32)},
		{WithIndexLimit(0)},
		{WithCacheEntries(100)},
		{WithCacheRatio(0)},
		{WithoutPipeline()},
		{WithGreedySelection()},
		{WithDevice(DeviceP4510)},
		{WithDevice(DeviceRAID0(DeviceP5800X, 2))},
		{TimingOnly()},
	} {
		db, err := Open(tr.NumItems, tr.Queries[:500], opts...)
		if err != nil {
			t.Fatalf("Open(%d opts): %v", len(opts), err)
		}
		if _, err := db.Lookup(tr.Queries[0]); err != nil {
			t.Fatalf("Lookup: %v", err)
		}
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(-1, nil); err == nil {
		t.Error("negative numItems accepted")
	}
	if _, err := Open(2, [][]Key{{5}}); err == nil {
		t.Error("history key out of range accepted")
	}
	if _, err := Open(10, nil, WithReplicationRatio(-2)); err == nil {
		t.Error("negative ratio accepted")
	}
}

func TestConcurrentSessions(t *testing.T) {
	tr := smallTrace(t)
	db, err := Open(tr.NumItems, tr.Queries, WithCacheRatio(0.1))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := db.NewSession()
			for i := w; i < len(tr.Queries); i += 8 {
				if _, err := sess.Lookup(tr.Queries[i]); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestTimingOnlyNoVectors(t *testing.T) {
	tr := smallTrace(t)
	db, err := Open(tr.NumItems, tr.Queries[:500], TimingOnly(), WithCacheRatio(0))
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Lookup(tr.Queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Vectors) != 0 {
		t.Errorf("timing-only returned %d vectors", len(res.Vectors))
	}
	if res.Stats.PagesRead == 0 {
		t.Error("timing-only did no reads")
	}
}

func TestRefreshKeepsHomesAndServesCorrectly(t *testing.T) {
	tr := smallTrace(t)
	first, rest := tr.Split(0.3)
	second, eval := rest.Split(0.5)
	db, err := Open(tr.NumItems, first.Queries, WithReplicationRatio(0.3), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	homesBefore := append([]uint32(nil), db.lay.Home...)
	replicasBefore := db.LayoutStats().ReplicaSlots

	if err := db.Refresh(second.Queries); err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	if !reflect.DeepEqual(homesBefore, db.lay.Home) {
		t.Error("Refresh moved home pages")
	}
	if db.LayoutStats().ReplicaSlots == 0 && replicasBefore > 0 {
		t.Error("Refresh dropped all replicas")
	}
	// Post-refresh sessions serve correct vectors.
	sess := db.NewSession()
	var want []float32
	for i := 0; i < 50 && i < len(eval.Queries); i++ {
		res, err := sess.Lookup(eval.Queries[i])
		if err != nil {
			t.Fatal(err)
		}
		for j, k := range res.Keys {
			want = db.syn.Vector(k, want[:0])
			for x := range want {
				if res.Vectors[j][x] != want[x] {
					t.Fatalf("wrong vector for key %d after refresh", k)
				}
			}
		}
	}
}

func TestRefreshRequiresMaxEmbedStrategy(t *testing.T) {
	tr := smallTrace(t)
	db, err := Open(tr.NumItems, tr.Queries[:200], WithStrategy(StrategySHP))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Refresh(tr.Queries[200:400]); err == nil {
		t.Error("Refresh accepted a non-MaxEmbed strategy")
	}
}

func TestLookupBatch(t *testing.T) {
	tr := smallTrace(t)
	history, eval := tr.Split(0.5)
	db, err := Open(tr.NumItems, history.Queries,
		WithReplicationRatio(0.2), WithCacheRatio(0))
	if err != nil {
		t.Fatal(err)
	}
	sess := db.NewSession()
	batch := eval.Queries[:4]
	res, err := sess.LookupBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[Key]bool{}
	for _, q := range batch {
		for _, k := range q {
			distinct[k] = true
		}
	}
	if res.Stats.Combined.DistinctKeys != len(distinct) {
		t.Errorf("batch served %d distinct keys, want %d", res.Stats.Combined.DistinctKeys, len(distinct))
	}
	// Each query gets back exactly its own distinct keys.
	if len(res.PerQuery) != len(batch) {
		t.Fatalf("PerQuery = %d, want %d", len(res.PerQuery), len(batch))
	}
	for qi, q := range batch {
		want := map[Key]bool{}
		for _, k := range q {
			want[k] = true
		}
		got := res.PerQuery[qi]
		if len(got.Keys) != len(want) {
			t.Errorf("query %d returned %d keys, want %d", qi, len(got.Keys), len(want))
		}
		for _, k := range got.Keys {
			if !want[k] {
				t.Errorf("query %d returned key %d it never asked for", qi, k)
			}
		}
	}
	// Batching the same queries must not read more pages than serving
	// them separately (shared pages are read once).
	sep := db.NewSession()
	var sepPages int
	for _, q := range batch {
		r, err := sep.Lookup(q)
		if err != nil {
			t.Fatal(err)
		}
		sepPages += r.Stats.PagesRead
	}
	if got := res.Stats.Combined.PagesRead; got > sepPages {
		t.Errorf("batch read %d pages, separate lookups %d", got, sepPages)
	}
}

func TestSegmentedCacheOption(t *testing.T) {
	tr := smallTrace(t)
	db, err := Open(tr.NumItems, tr.Queries[:500], WithSegmentedCache(), WithCacheRatio(0.1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Lookup(tr.Queries[0]); err != nil {
		t.Fatal(err)
	}
	if db.Engine().Cache() == nil {
		t.Fatal("segmented cache not constructed")
	}
}

func TestHistoryRecordingAndRefreshLoop(t *testing.T) {
	tr := smallTrace(t)
	history, live := tr.Split(0.5)
	db, err := Open(tr.NumItems, history.Queries,
		WithReplicationRatio(0.2), WithHistoryRecording(300))
	if err != nil {
		t.Fatal(err)
	}
	if db.RecordedHistory() != nil && len(db.RecordedHistory()) != 0 {
		t.Error("history non-empty before serving")
	}
	sess := db.NewSession()
	for i := 0; i < 400; i++ {
		if _, err := sess.Lookup(live.Queries[i%len(live.Queries)]); err != nil {
			t.Fatal(err)
		}
	}
	recorded := db.RecordedHistory()
	if len(recorded) != 300 {
		t.Fatalf("recorded %d queries, want 300", len(recorded))
	}
	if err := db.Refresh(recorded); err != nil {
		t.Fatalf("Refresh from recorded history: %v", err)
	}
	if _, err := db.NewSession().Lookup(live.Queries[0]); err != nil {
		t.Fatalf("lookup after refresh: %v", err)
	}
}

// TestHotSwapUnderConcurrentLookups hammers the refresh hot-swap seam:
// sessions serve isolated and coalesced lookups (with device faults armed)
// while the layout is refreshed repeatedly underneath them. Every served
// vector must stay correct, each session must observe a non-decreasing
// layout generation, per-query PageShare must keep summing to the batch's
// page reads, and the final generation must reflect every refresh.
func TestHotSwapUnderConcurrentLookups(t *testing.T) {
	tr := smallTrace(t)
	history, live := tr.Split(0.5)
	db, err := Open(tr.NumItems, history.Queries,
		WithReplicationRatio(0.3), WithSeed(3),
		WithHistoryRecording(256),
		WithFaultInjection(FaultConfig{Seed: 7, ReadErrorProb: 0.01, CorruptProb: 0.005}))
	if err != nil {
		t.Fatal(err)
	}

	const workers = 4
	const refreshes = 3
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	fail := func(format string, args ...any) {
		select {
		case errs <- fmt.Errorf(format, args...):
		default:
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := db.NewSession()
			lastGen := sess.Generation()
			var want []float32
			checkResult := func(res Result) bool {
				for j, k := range res.Keys {
					want = db.syn.Vector(k, want[:0])
					got := res.Vectors[j]
					if len(got) != len(want) {
						fail("worker %d: key %d vector dim %d, want %d", w, k, len(got), len(want))
						return false
					}
					for x := range want {
						if got[x] != want[x] {
							fail("worker %d: wrong vector for key %d (gen %d)", w, k, res.Stats.Generation)
							return false
						}
					}
				}
				return true
			}
			for i := w; ; i += workers {
				select {
				case <-stop:
					return
				default:
				}
				q := live.Queries[i%len(live.Queries)]
				var gen uint64
				if w%2 == 0 {
					res, err := sess.Lookup(q)
					if err != nil {
						fail("worker %d: Lookup: %v", w, err)
						return
					}
					if !checkResult(res) {
						return
					}
					gen = res.Stats.Generation
				} else {
					q2 := live.Queries[(i+1)%len(live.Queries)]
					br, err := sess.LookupBatch([][]Key{q, q2})
					if err != nil {
						fail("worker %d: LookupBatch: %v", w, err)
						return
					}
					var share float64
					for _, r := range br.PerQuery {
						if !checkResult(r) {
							return
						}
						share += r.Stats.PageShare
					}
					if got := float64(br.Stats.Combined.PagesRead); share < got-1e-6 || share > got+1e-6 {
						fail("worker %d: PageShare sum %.6f != batch PagesRead %d", w, share, br.Stats.Combined.PagesRead)
						return
					}
					gen = br.Stats.Combined.Generation
				}
				if gen < lastGen {
					fail("worker %d: generation went backwards: %d after %d", w, gen, lastGen)
					return
				}
				lastGen = gen
			}
		}(w)
	}

	for r := 0; r < refreshes; r++ {
		if err := db.Refresh(live.Queries[:200]); err != nil {
			t.Errorf("refresh %d: %v", r, err)
			break
		}
		// Let the hammer goroutines serve a few queries on the new
		// generation before the next swap.
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got, want := db.LayoutGeneration(), uint64(1+refreshes); got != want {
		t.Errorf("final layout generation = %d, want %d", got, want)
	}
	if db.Handle().Swaps() != refreshes {
		t.Errorf("Swaps = %d, want %d", db.Handle().Swaps(), refreshes)
	}
}
