package maxembed

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestMultiDeviceOpenAndLookup(t *testing.T) {
	tr := smallTrace(t)
	history, eval := tr.Split(0.5)
	db, err := Open(tr.NumItems, history.Queries,
		WithReplicationRatio(0.3), WithDevices(2), WithCacheRatio(0), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if db.NumDevices() != 2 {
		t.Fatalf("NumDevices = %d, want 2", db.NumDevices())
	}
	if db.Backend().NumShards() != 2 {
		t.Fatalf("backend NumShards = %d, want 2", db.Backend().NumShards())
	}
	sess := db.NewSession()
	var want []float32
	for i := 0; i < 200 && i < len(eval.Queries); i++ {
		res, err := sess.Lookup(eval.Queries[i])
		if err != nil {
			t.Fatal(err)
		}
		for j, k := range res.Keys {
			want = db.syn.Vector(k, want[:0])
			for x := range want {
				if res.Vectors[j][x] != want[x] {
					t.Fatalf("query %d: wrong vector for key %d on 2-device array", i, k)
				}
			}
		}
	}
	ss := db.ShardStats()
	if len(ss) != 2 {
		t.Fatalf("ShardStats len = %d, want 2", len(ss))
	}
	var total int64
	for s, st := range ss {
		if st.Reads == 0 {
			t.Errorf("shard %d served no reads: striping left a device idle", s)
		}
		total += st.Reads
	}
	if agg := db.DeviceStats().Reads; agg != total {
		t.Errorf("aggregate reads %d != per-shard sum %d", agg, total)
	}
}

func TestSingleDeviceShardStats(t *testing.T) {
	tr := smallTrace(t)
	db, err := Open(tr.NumItems, tr.Queries[:500])
	if err != nil {
		t.Fatal(err)
	}
	if db.NumDevices() != 1 {
		t.Fatalf("NumDevices = %d, want 1", db.NumDevices())
	}
	if _, err := db.Lookup(tr.Queries[0]); err != nil {
		t.Fatal(err)
	}
	ss := db.ShardStats()
	if len(ss) != 1 {
		t.Fatalf("ShardStats len = %d, want 1", len(ss))
	}
	if ss[0] != db.DeviceStats() {
		t.Error("single-device ShardStats[0] differs from DeviceStats")
	}
}

// TestMultiDeviceHotSwapUnderLoad exercises the refresh hot-swap seam with
// a striped 2-device array: sessions hammer lookups while the layout is
// refreshed repeatedly. Every vector must stay correct, generations must be
// monotone per session, and the refresh must rebuild onto the SAME array —
// the devices (and their accumulated statistics) survive the swap.
func TestMultiDeviceHotSwapUnderLoad(t *testing.T) {
	tr := smallTrace(t)
	history, live := tr.Split(0.5)
	db, err := Open(tr.NumItems, history.Queries,
		WithReplicationRatio(0.3), WithDevices(2), WithSeed(3),
		WithHistoryRecording(256))
	if err != nil {
		t.Fatal(err)
	}
	backendBefore := db.Backend()

	const workers = 4
	const refreshes = 3
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	fail := func(format string, args ...any) {
		select {
		case errs <- fmt.Errorf(format, args...):
		default:
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := db.NewSession()
			lastGen := sess.Generation()
			var want []float32
			for i := w; ; i += workers {
				select {
				case <-stop:
					return
				default:
				}
				res, err := sess.Lookup(live.Queries[i%len(live.Queries)])
				if err != nil {
					fail("worker %d: Lookup: %v", w, err)
					return
				}
				for j, k := range res.Keys {
					want = db.syn.Vector(k, want[:0])
					for x := range want {
						if res.Vectors[j][x] != want[x] {
							fail("worker %d: wrong vector for key %d (gen %d)", w, k, res.Stats.Generation)
							return
						}
					}
				}
				if res.Stats.Generation < lastGen {
					fail("worker %d: generation went backwards", w)
					return
				}
				lastGen = res.Stats.Generation
			}
		}(w)
	}

	for r := 0; r < refreshes; r++ {
		var err error
		if r == 0 {
			// First refresh through the recorded-history path.
			for db.PendingQueries() == 0 {
				time.Sleep(time.Millisecond)
			}
			err = db.RefreshNow()
		} else {
			err = db.Refresh(live.Queries[:200])
		}
		if err != nil {
			t.Errorf("refresh %d: %v", r, err)
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if db.Backend() != backendBefore {
		t.Error("refresh replaced the device array instead of rebuilding onto it")
	}
	if db.NumDevices() != 2 {
		t.Errorf("NumDevices after refresh = %d", db.NumDevices())
	}
	if got, want := db.LayoutGeneration(), uint64(1+refreshes); got != want {
		t.Errorf("final layout generation = %d, want %d", got, want)
	}
}
