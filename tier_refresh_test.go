package maxembed

import (
	"context"
	"errors"
	"sync"
	"testing"

	"maxembed/internal/placement"
)

var errWrongVector = errors.New("wrong vector bytes during refresh")

// tieredOptions is the canonical 2-tier test array: one P5800X-class
// shard fronting three P4510-class shards.
func tieredOptions(extra ...Option) []Option {
	opts := []Option{
		WithTiers(
			TierSpec{Profile: DeviceP5800X, Devices: 1},
			TierSpec{Profile: DeviceP4510, Devices: 3},
		),
		WithReplicationRatio(0.2),
		WithSeed(11),
	}
	return append(opts, extra...)
}

// shiftKeys remaps every key by half the key space, migrating the hot set
// wholesale — the workload drift that must flip tier residency.
func shiftKeys(queries [][]Key, numItems int) [][]Key {
	out := make([][]Key, len(queries))
	for i, q := range queries {
		nq := make([]Key, len(q))
		for j, k := range q {
			nq[j] = Key((int(k) + numItems/2) % numItems)
		}
		out[i] = nq
	}
	return out
}

// fastReadShare serves the queries and returns the fraction of the SSD
// reads they caused that landed on tier 0.
func fastReadShare(t *testing.T, db *DB, queries [][]Key) float64 {
	t.Helper()
	before := db.TierStats()
	sess := db.NewSession()
	for _, q := range queries {
		if _, err := sess.Lookup(q); err != nil {
			t.Fatalf("Lookup: %v", err)
		}
	}
	after := db.TierStats()
	var fast, total int64
	for i := range after {
		d := after[i].Reads - before[i].Reads
		total += d
		if i == 0 {
			fast = d
		}
	}
	if total == 0 {
		t.Fatal("queries caused no SSD reads")
	}
	return float64(fast) / float64(total)
}

func TestTieredOpenConcentratesReadsOnFastTier(t *testing.T) {
	tr := smallTrace(t)
	history, eval := tr.Split(0.5)
	db, err := Open(tr.NumItems, history.Queries,
		tieredOptions(WithCacheRatio(0.02), WithDRAMPins(8))...)
	if err != nil {
		t.Fatal(err)
	}
	tiers := db.Tiers()
	if len(tiers) != 2 {
		t.Fatalf("Tiers = %d, want 2", len(tiers))
	}
	if tiers[0].Profile.Name != DeviceP5800X.Name || tiers[1].Profile.Name != DeviceP4510.Name {
		t.Fatalf("tier profiles = %s/%s, want fast/dense", tiers[0].Profile.Name, tiers[1].Profile.Name)
	}
	if db.NumDevices() != 4 {
		t.Fatalf("NumDevices = %d, want 4", db.NumDevices())
	}
	rep := db.LastRetier()
	if rep == nil {
		t.Fatal("LastRetier nil after tiered Open")
	}
	if got := len(rep.TierPages); got != 2 {
		t.Fatalf("TierPages has %d tiers, want 2", got)
	}
	// The fast tier owns 1 of 4 stripe shards; the hotness pass must
	// concentrate reads on it beyond that share.
	if share := fastReadShare(t, db, eval.Queries); share <= 0.25 {
		t.Errorf("fast tier served %.1f%% of reads, want > 25%%", share*100)
	}
	if len(db.PinnedKeys()) != 8 {
		t.Errorf("PinnedKeys = %d, want 8", len(db.PinnedKeys()))
	}
}

func TestRefreshRetiersOnSkewShift(t *testing.T) {
	tr := smallTrace(t)
	history, eval := tr.Split(0.5)
	shiftedHistory := shiftKeys(history.Queries, tr.NumItems)
	shiftedEval := shiftKeys(eval.Queries, tr.NumItems)

	db, err := Open(tr.NumItems, history.Queries,
		tieredOptions(WithCacheRatio(0.02), WithDRAMPins(8))...)
	if err != nil {
		t.Fatal(err)
	}
	gen0 := db.LayoutGeneration()
	pins0 := db.PinnedKeys()

	// Promotion/demotion happens only at the refresh boundary: serving the
	// shifted workload must not move anything by itself.
	repBefore := *db.LastRetier()
	_ = fastReadShare(t, db, shiftedEval[:50])
	if got := *db.LastRetier(); got.Promoted != repBefore.Promoted ||
		got.Demoted != repBefore.Demoted || got.Moved != repBefore.Moved {
		t.Fatal("serving alone changed the tier report; re-tiering must wait for Refresh")
	}

	if err := db.Refresh(shiftedHistory); err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	if got := db.LayoutGeneration(); got != gen0+1 {
		t.Fatalf("generation = %d after refresh, want %d", got, gen0+1)
	}
	rep := db.LastRetier()
	if rep == nil {
		t.Fatal("LastRetier nil after refresh")
	}
	if rep.Promoted == 0 || rep.Demoted == 0 {
		t.Fatalf("promoted/demoted = %d/%d after a wholesale skew shift, want both > 0",
			rep.Promoted, rep.Demoted)
	}
	// The pin-set follows the shifted hot set.
	pins1 := db.PinnedKeys()
	if len(pins1) != 8 {
		t.Fatalf("PinnedKeys = %d after refresh, want 8", len(pins1))
	}
	freq := placement.KeyFreq(tr.NumItems, shiftedHistory)
	for _, k := range pins1 {
		if freq[k] == 0 {
			t.Errorf("pinned key %d has zero frequency in the shifted history", k)
		}
	}
	same := 0
	for _, k := range pins1 {
		for _, o := range pins0 {
			if k == o {
				same++
			}
		}
	}
	if same == len(pins1) {
		t.Error("pin-set identical across a wholesale skew shift")
	}

	// The re-tiered layout serves the shifted workload from the fast tier
	// and every vector stays byte-correct across the generation swap.
	if share := fastReadShare(t, db, shiftedEval); share <= 0.25 {
		t.Errorf("fast tier served %.1f%% of shifted reads after refresh, want > 25%%", share*100)
	}
	sess := db.NewSession()
	var want []float32
	for _, q := range shiftedEval[:100] {
		res, err := sess.Lookup(q)
		if err != nil {
			t.Fatal(err)
		}
		for j, k := range res.Keys {
			want = db.syn.Vector(k, want[:0])
			for x := range want {
				if res.Vectors[j][x] != want[x] {
					t.Fatalf("wrong vector for key %d after re-tier swap", k)
				}
			}
		}
	}
}

// TestRefreshDuringFastShardRebuild is the regression test for the stale
// tier-map race: Refresh samples the shard→tier map, releases the DB lock
// for the expensive placement/store rebuild, and used to apply the
// re-tier permutation against that snapshot even if a concurrent shard
// rebuild had replaced a failed fast shard with a dense spare in the
// meantime — promoting hot pages onto shards that were no longer fast.
// Refresh must detect the geometry change at swap time and redo the tier
// pass against the re-derived map. The test races a Refresh against a
// fail → rebuild of a fast-tier shard repeatedly; afterwards the DB's
// tier reports must agree with the live backend and every vector must
// still be byte-correct.
func TestRefreshDuringFastShardRebuild(t *testing.T) {
	tr := smallTrace(t)
	history, eval := tr.Split(0.5)
	db, err := Open(tr.NumItems, history.Queries,
		WithTiers(
			TierSpec{Profile: DeviceP5800X, Devices: 2},
			TierSpec{Profile: DeviceP4510, Devices: 2},
		),
		WithReplicationRatio(0.2),
		WithSeed(11),
		WithHotSpare(),
	)
	if err != nil {
		t.Fatal(err)
	}
	shifted := shiftKeys(history.Queries, tr.NumItems)

	// Two rounds: the first shrinks the fast tier (2×fast → 1×fast), the
	// second collapses it entirely (all-dense, single tier). Each round
	// races one Refresh against the fail+rebuild of a fast shard.
	for round := 0; round < 2; round++ {
		fastShards := db.Tiers()[0].Shards
		if db.Backend().(interface{ NumTiers() int }).NumTiers() < 2 {
			t.Fatalf("round %d: fast tier already gone", round)
		}
		victim := fastShards[0]
		refreshDone := make(chan error, 1)
		go func() { refreshDone <- db.Refresh(shifted) }()
		if err := db.FailShard(victim); err != nil {
			t.Fatalf("round %d: FailShard(%d): %v", round, victim, err)
		}
		if _, err := db.RebuildShard(context.Background(), victim, RebuildConfig{}); err != nil {
			t.Fatalf("round %d: RebuildShard(%d): %v", round, victim, err)
		}
		if err := <-refreshDone; err != nil {
			t.Fatalf("round %d: Refresh racing rebuild: %v", round, err)
		}
		if err := db.AttachSpare(); err != nil {
			t.Fatalf("round %d: AttachSpare: %v", round, err)
		}
	}
	if got := len(db.Tiers()); got != 1 {
		t.Fatalf("tiers after both fast shards rebuilt onto dense spares = %d, want 1", got)
	}

	// A quiesced Refresh must now agree with the collapsed geometry: no
	// tier pass on a single-tier array, and the layout it swaps in serves
	// every vector byte-correct.
	if err := db.Refresh(shifted); err != nil {
		t.Fatalf("post-collapse Refresh: %v", err)
	}
	if rep := db.LastRetier(); rep != nil {
		t.Errorf("LastRetier = %+v on a single-tier backend, want nil (stale tier map applied)", rep)
	}
	sess := db.NewSession()
	var want []float32
	for _, q := range shiftKeys(eval.Queries[:100], tr.NumItems) {
		res, err := sess.Lookup(q)
		if err != nil {
			t.Fatal(err)
		}
		for j, k := range res.Keys {
			want = db.syn.Vector(k, want[:0])
			for x := range want {
				if res.Vectors[j][x] != want[x] {
					t.Fatalf("wrong vector for key %d after rebuild+refresh races", k)
				}
			}
		}
	}
}

func TestRefreshRetierUnderConcurrentLookups(t *testing.T) {
	tr := smallTrace(t)
	history, eval := tr.Split(0.5)
	db, err := Open(tr.NumItems, history.Queries, tieredOptions(WithCacheEntries(64))...)
	if err != nil {
		t.Fatal(err)
	}
	shifted := shiftKeys(history.Queries, tr.NumItems)

	const workers = 4
	stop := make(chan struct{})
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := db.NewSession()
			var want []float32
			for i := w; ; i += workers {
				select {
				case <-stop:
					return
				default:
				}
				res, err := sess.Lookup(eval.Queries[i%len(eval.Queries)])
				if err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
				for j, k := range res.Keys {
					want = db.syn.Vector(k, want[:0])
					for x := range want {
						if res.Vectors[j][x] != want[x] {
							select {
							case errs <- errWrongVector:
							default:
							}
							return
						}
					}
				}
			}
		}(w)
	}

	gen0 := db.LayoutGeneration()
	for i := 0; i < 3; i++ {
		if err := db.Refresh(shifted); err != nil {
			t.Fatalf("Refresh %d under load: %v", i, err)
		}
		if got := db.LayoutGeneration(); got != gen0+uint64(i)+1 {
			t.Fatalf("generation = %d after refresh %d, want monotone %d", got, i, gen0+uint64(i)+1)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatalf("lookup during re-tiering refresh: %v", err)
	default:
	}
	if db.PendingQueries() != 0 {
		t.Errorf("PendingQueries = %d after quiesce, want 0", db.PendingQueries())
	}
}
